#!/usr/bin/env python3
"""Paper §4: verification and service-chain composition with models.

1. **Stateful invariant checking** — "the firewall never forwards a
   connection initiated from the untrusted side" (with a demonstration
   that the property depends on the configuration).
2. **Header-space reachability** through a firewall → load-balancer
   chain, with the LB's rewrite visible in the output space.
3. **Service policy composition** — the paper's {FW, IDS} + {LB}
   example, recovering the {FW, IDS, LB} order.

Run:  python examples/verify_chain.py
"""

from repro.apps.compose import compose_chains
from repro.apps.verify import (
    HeaderSpace,
    NetworkVerifier,
    config_constraints,
    find_forwarding_witness,
)
from repro.nfactor.algorithm import synthesize_model
from repro.nfs import get_nf
from repro.symbolic.expr import SVar, mk_app

FLAGS = SVar("pkt.tcp_flags", 0, 31)
PROTO = SVar("pkt.proto", 0, 255)
IN_PORT = SVar("pkt.in_port", 0, 255)


def main() -> None:
    print("synthesizing firewall, IDS and load-balancer models ...")
    fw = synthesize_model(get_nf("firewall").source, name="firewall")
    lb = synthesize_model(get_nf("loadbalancer").source, name="loadbalancer")
    ids = synthesize_model(get_nf("snortlite").source, name="snortlite")
    print("done\n")

    print("=" * 72)
    print("1. Invariant: untrusted side cannot initiate connections")
    print("=" * 72)
    syn_only = mk_app(
        "and",
        mk_app("!=", mk_app("&", FLAGS, 2), 0),
        mk_app("==", mk_app("&", FLAGS, 16), 0),
    )
    property_negation = [mk_app("==", PROTO, 6), mk_app("!=", IN_PORT, 0), syn_only]

    witness = find_forwarding_witness(
        fw.model, config_constraints(fw) + property_negation, empty_state=True
    )
    print(f"   under the deployed config: "
          f"{'HOLDS (no witness)' if witness is None else 'VIOLATED'}")

    witness = find_forwarding_witness(fw.model, property_negation, empty_state=True)
    if witness is not None:
        entry, assignment = witness
        trusted = assignment.get("v:cfg.TRUSTED_PORT")
        print(f"   over all configs: VIOLATED — e.g. with TRUSTED_PORT={trusted} "
              f"(entry {entry.entry_id}); config pinning matters")

    print()
    print("=" * 72)
    print("2. Reachability through firewall -> load balancer")
    print("=" * 72)
    verifier = NetworkVerifier([("fw", fw.model), ("lb", lb.model)])
    space = HeaderSpace.universe().constrained(
        *config_constraints(fw), *config_constraints(lb)
    )
    out_spaces = verifier.reachable(space)
    print(f"   {len(out_spaces)} end-to-end forwarding behaviours")
    for s in out_spaces[:4]:
        hops = " -> ".join(f"{nf}#{eid}" for nf, eid in s.trace)
        print(f"   via {hops}: ip_src becomes {s.fields['ip_src']!r}")

    print()
    print("=" * 72)
    print("3. Composing the policies {FW, IDS} and {LB} (paper example)")
    print("=" * 72)
    ranked = compose_chains(
        [("FW", fw.model), ("IDS", ids.model)], [("LB", lb.model)]
    )
    for analysis in ranked:
        marker = "  <== recommended" if analysis is ranked[0] else ""
        print(f"   {' -> '.join(analysis.order):20s} "
              f"{analysis.n_conflicts} conflict(s){marker}")
    print(f"\n   detail: {ranked[-1].summary()}")


if __name__ == "__main__":
    main()
