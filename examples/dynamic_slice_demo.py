#!/usr/bin/env python3
"""Paper Figure 1: highlight the dynamic slice of a forwarding path.

Runs the load balancer on the first packet of a new flow with tracing
enabled, computes the dynamic backward slice from the ``send_packet``
call, and prints the source with the slice highlighted — the exact
presentation of the paper's Figure 1.

Run:  python examples/dynamic_slice_demo.py
"""

from repro.interp import Env, Interpreter
from repro.interp.values import deep_copy
from repro.lang.ir import ECall, SExpr, iter_block
from repro.net.packet import Packet
from repro.nfactor.algorithm import synthesize_model
from repro.nfs import get_nf
from repro.slicing.criteria import SliceCriterion
from repro.slicing.dynamic import dynamic_slice


def main() -> None:
    spec = get_nf("loadbalancer")
    result = synthesize_model(spec.source, name="loadbalancer")

    # Execute one packet with tracing on the flattened program.
    interp = Interpreter(trace=True)
    state = deep_copy(result.module_env)
    state["pkt"] = Packet(dport=80, ip_src=167772161, sport=4242, ip_dst=50529027)
    interp.run_block(result.flat.block, Env(globals=state))
    print(f"executed {len(interp.trace)} statement occurrences; "
          f"sent {len(interp.sent)} packet(s)\n")

    send_stmt = next(
        s for s in iter_block(result.flat.block)
        if isinstance(s, SExpr)
        and isinstance(s.value, ECall)
        and s.value.func == "send_packet"
    )
    dyn_sids = dynamic_slice(interp.trace, SliceCriterion(send_stmt.sid, None))
    dyn_lines = result.flat.source_lines(dyn_sids)
    static_lines = result.slice_source_lines()

    print("Load balancer source — dynamic slice of the first-packet path")
    print("('>>' = in the dynamic slice, '+ ' = only in the static slice)\n")
    for lineno, line in enumerate(spec.source.splitlines(), start=1):
        if lineno in dyn_lines:
            prefix = ">> "
        elif lineno in static_lines:
            prefix = "+  "
        else:
            prefix = "   "
        print(prefix + line)

    print(f"\ndynamic slice: {len(dyn_lines)} lines; "
          f"static packet+state slice: {len(static_lines)} lines")


if __name__ == "__main__":
    main()
