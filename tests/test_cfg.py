"""Tests for CFG construction, dominance and control dependence."""

from __future__ import annotations

import pytest

from repro.cfg.builder import build_cfg
from repro.cfg.control_dependence import control_dependence
from repro.cfg.dominance import (
    dominators,
    immediate_dominators,
    immediate_postdominators,
    postdominators,
)
from repro.cfg.graph import CFG, ENTRY, EXIT
from repro.lang.parser import parse_function


def body_cfg(source: str):
    fn = parse_function(source)
    cfg = build_cfg(fn.body)
    stmts = {s.sid: s for s in fn.stmts()}
    return cfg, stmts, fn


class TestBuilder:
    def test_straight_line(self):
        cfg, stmts, _ = body_cfg("def f(a):\n    x = a\n    y = x\n")
        sids = sorted(stmts)
        assert cfg.succs(ENTRY) == [sids[0]]
        assert cfg.succs(sids[0]) == [sids[1]]
        assert cfg.succs(sids[1]) == [EXIT]

    def test_if_else_diamond(self):
        cfg, stmts, fn = body_cfg(
            "def f(a):\n    if a:\n        x = 1\n    else:\n        x = 2\n    y = x\n"
        )
        branch = fn.body[0].sid
        labels = sorted(str(e.label) for e in cfg.succ_edges(branch))
        assert labels == ["False", "True"]

    def test_while_back_edge(self):
        cfg, stmts, fn = body_cfg("def f(a):\n    while a:\n        a -= 1\n")
        header = fn.body[0].sid
        body_sid = fn.body[0].body[0].sid
        assert header in cfg.succs(body_sid)
        assert EXIT in cfg.succs(header)

    def test_while_true_gets_virtual_exit(self):
        cfg, stmts, fn = body_cfg("def f(a):\n    while True:\n        a += 1\n")
        header = fn.body[0].sid
        virtual = [e for e in cfg.succ_edges(header) if e.virtual]
        assert virtual and virtual[0].dst == EXIT

    def test_break_exits_loop(self):
        cfg, stmts, fn = body_cfg(
            "def f(a):\n    while True:\n        if a:\n            break\n    x = 1\n"
        )
        brk = fn.body[0].body[0].then[0].sid
        after = fn.body[-1].sid
        assert after in cfg.succs(brk, virtual=False)

    def test_continue_targets_header(self):
        cfg, stmts, fn = body_cfg(
            "def f(a):\n    while a:\n        if a == 1:\n            continue\n        a -= 1\n"
        )
        header = fn.body[0].sid
        cont = fn.body[0].body[0].then[0].sid
        assert header in cfg.succs(cont, virtual=False)

    def test_return_goes_to_exit_with_pseudo_fallthrough(self):
        cfg, stmts, fn = body_cfg(
            "def f(a):\n    if a:\n        return 1\n    x = 2\n    return x\n"
        )
        ret = fn.body[0].then[0].sid
        real = cfg.succs(ret, virtual=False)
        assert real == [EXIT]
        pseudo = [e for e in cfg.succ_edges(ret) if e.label == "pseudo"]
        assert pseudo and pseudo[0].dst == fn.body[1].sid

    def test_empty_block(self):
        cfg = build_cfg([])
        assert EXIT in cfg.succs(ENTRY)

    def test_break_outside_loop_rejected(self):
        from repro.lang.ir import SBreak

        with pytest.raises(ValueError):
            build_cfg([SBreak(sid=0)])

    def test_all_nodes_reach_exit_with_virtual(self):
        cfg, stmts, _ = body_cfg(
            "def f(a):\n    while True:\n        if a:\n            break\n        a += 1\n    return a\n"
        )
        rev = cfg.reversed_view()
        reachable = rev.reachable(EXIT)
        assert set(stmts) <= reachable


class TestDominance:
    def test_diamond(self):
        cfg, stmts, fn = body_cfg(
            "def f(a):\n    if a:\n        x = 1\n    else:\n        x = 2\n    y = x\n"
        )
        branch = fn.body[0].sid
        join = fn.body[1].sid
        idom = immediate_dominators(cfg)
        assert idom[join] == branch
        doms = dominators(cfg)
        assert branch in doms[join]
        then_sid = fn.body[0].then[0].sid
        assert then_sid not in doms[join]

    def test_postdominators_diamond(self):
        cfg, stmts, fn = body_cfg(
            "def f(a):\n    if a:\n        x = 1\n    else:\n        x = 2\n    y = x\n"
        )
        branch = fn.body[0].sid
        join = fn.body[1].sid
        pdoms = postdominators(cfg)
        assert join in pdoms[branch]

    def test_ipdom_of_branch_is_join(self):
        cfg, stmts, fn = body_cfg(
            "def f(a):\n    if a:\n        x = 1\n    y = 2\n"
        )
        branch = fn.body[0].sid
        join = fn.body[1].sid
        assert immediate_postdominators(cfg)[branch] == join

    def test_idom_tree_rooted_at_entry(self):
        cfg, stmts, _ = body_cfg(
            "def f(a):\n    while a:\n        if a > 2:\n            a -= 2\n        else:\n            a -= 1\n    return a\n"
        )
        idom = immediate_dominators(cfg)
        for node in stmts:
            cur, seen = node, set()
            while idom[cur] != cur:
                assert cur not in seen
                seen.add(cur)
                cur = idom[cur]
            assert cur == ENTRY


class TestControlDependence:
    def test_then_depends_on_branch(self):
        cfg, stmts, fn = body_cfg(
            "def f(a):\n    if a:\n        x = 1\n    y = 2\n"
        )
        branch = fn.body[0].sid
        then_sid = fn.body[0].then[0].sid
        after = fn.body[1].sid
        cd = control_dependence(cfg)
        assert branch in cd[then_sid]
        assert branch not in cd[after]

    def test_loop_body_depends_on_header(self):
        cfg, stmts, fn = body_cfg("def f(a):\n    while a:\n        a -= 1\n")
        header = fn.body[0].sid
        body_sid = fn.body[0].body[0].sid
        cd = control_dependence(cfg)
        assert header in cd[body_sid]
        assert header in cd[header]  # loop header depends on itself

    def test_statement_after_early_return_depends_on_jump(self):
        cfg, stmts, fn = body_cfg(
            "def f(a):\n    if a:\n        return 0\n    x = 1\n    return x\n"
        )
        ret = fn.body[0].then[0].sid
        after = fn.body[1].sid
        cd = control_dependence(cfg)
        # Ball–Horwitz: `x = 1` executes only if the return did not.
        assert ret in cd[after]

    def test_nested_dependence(self):
        cfg, stmts, fn = body_cfg(
            "def f(a):\n    if a:\n        if a > 2:\n            x = 1\n"
        )
        outer = fn.body[0].sid
        inner = fn.body[0].then[0].sid
        leaf = fn.body[0].then[0].then[0].sid
        cd = control_dependence(cfg)
        assert cd[leaf] == {inner}
        assert cd[inner] == {outer}
