"""The documented top-level API surface must stay importable."""

from __future__ import annotations

import pytest


def test_top_level_reexports():
    import repro

    assert repro.__version__
    assert repro.NFactor is not None
    assert repro.synthesize_model is not None
    assert repro.NFModel is not None
    assert repro.TableEntry is not None
    assert repro.Packet is not None
    with pytest.raises(AttributeError):
        _ = repro.no_such_symbol


def test_readme_quickstart_snippet():
    """The exact code shown in README.md#quickstart must run."""
    from repro.nfactor.algorithm import synthesize_model
    from repro.model.serialize import render_model
    from repro.nfs import get_nf

    result = synthesize_model(get_nf("loadbalancer").source, name="lb")
    assert "config" in render_model(result.model)

    sim = result.make_simulator()
    ref = result.make_reference()
    from repro.net.packet import Packet

    pkt = Packet(dport=80, ip_src=1, sport=1234, ip_dst=50529027)
    assert sim.process(pkt.copy()) == ref.process_packet(pkt.copy())


def test_subpackage_all_exports_resolve():
    import importlib

    for name in (
        "repro.lang",
        "repro.cfg",
        "repro.dataflow",
        "repro.pdg",
        "repro.slicing",
        "repro.interp",
        "repro.symbolic",
        "repro.statealyzer",
        "repro.nfactor",
        "repro.model",
        "repro.net",
        "repro.nfs",
        "repro.apps",
        "repro.equiv",
        "repro.util",
    ):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert getattr(module, symbol, None) is not None, f"{name}.{symbol}"
