"""Property-based tests over randomly generated NFPy programs.

Hypothesis generates small structured programs; the properties are the
contracts the analyses must uphold for *any* input program:

* interpreter ≡ CPython on the pure-Python fragment;
* pretty-print → parse is a fixpoint;
* CFG well-formedness (reachability, dominator-tree rootedness);
* **slice soundness** (Weiser): running the executable backward slice
  preserves the criterion variable's value;
* **path partition**: symbolic execution paths of a loop-free program
  partition the concrete input space.
"""

from __future__ import annotations

import copy

from hypothesis import given, settings, strategies as st

from repro.cfg.builder import build_cfg
from repro.cfg.dominance import immediate_dominators
from repro.cfg.graph import ENTRY, EXIT
from repro.interp import Env, Interpreter
from repro.lang.ir import iter_block
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.net.packet import FIELD_DOMAINS, Packet
from repro.nfactor.refactor import executable_slice
from repro.pdg.flatten import flatten_program
from repro.pdg.pdg import build_pdg
from repro.slicing.criteria import SliceCriterion
from repro.slicing.static import StaticSlicer
from repro.symbolic.expr import SymPacket, eval_sym
from repro.symbolic.engine import SymbolicEngine

VARS = ["a", "b", "c", "d"]
FIELDS = ["ttl", "dport", "sport", "length"]


@st.composite
def int_expr(draw, depth=0):
    """A side-effect-free integer expression over VARS and constants."""
    if depth >= 2 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return str(draw(st.integers(0, 50)))
        if choice == 1:
            return draw(st.sampled_from(VARS))
        return f"pkt.{draw(st.sampled_from(FIELDS))}"
    op = draw(st.sampled_from(["+", "-", "*", "%"]))
    left = draw(int_expr(depth=depth + 1))
    right = draw(int_expr(depth=depth + 1))
    if op == "%":
        right = str(draw(st.integers(1, 13)))  # avoid modulo-by-zero
    return f"({left} {op} {right})"


@st.composite
def cond_expr(draw):
    op = draw(st.sampled_from(["==", "!=", "<", "<=", ">", ">="]))
    return f"({draw(int_expr())} {op} {draw(int_expr())})"


@st.composite
def block(draw, depth=0, indent="    "):
    """A random statement block as source lines."""
    lines = []
    n = draw(st.integers(1, 3))
    for _ in range(n):
        kind = draw(st.integers(0, 5)) if depth < 2 else 0
        if kind <= 2:
            var = draw(st.sampled_from(VARS))
            lines.append(f"{indent}{var} = {draw(int_expr())}")
        elif kind == 3:
            lines.append(f"{indent}if {draw(cond_expr())}:")
            lines.extend(draw(block(depth=depth + 1, indent=indent + '    ')))
            if draw(st.booleans()):
                lines.append(f"{indent}else:")
                lines.extend(draw(block(depth=depth + 1, indent=indent + '    ')))
        elif kind == 4:
            loop_var = "i"
            lines.append(f"{indent}for {loop_var} in range({draw(st.integers(1, 4))}):")
            inner = draw(block(depth=depth + 1, indent=indent + "    "))
            lines.extend(inner)
        else:
            var = draw(st.sampled_from(VARS))
            lines.append(f"{indent}{var} += {draw(int_expr())}")
    return lines


@st.composite
def nf_program(draw):
    """A random per-packet program ending in a criterion assignment."""
    body = draw(block())
    lines = ["def cb(pkt):"]
    lines.append("    a = pkt.ttl")
    lines.append("    b = pkt.dport")
    lines.append("    c = 1")
    lines.append("    d = 0")
    lines.extend(body)
    lines.append(f"    out = {draw(int_expr())}")
    lines.append("    pkt.length = out % 65536")
    lines.append("    send_packet(pkt)")
    return "\n".join(lines) + "\n"


def random_packet(data: st.DataObject) -> Packet:
    fields = {
        name: data.draw(st.integers(lo, min(hi, 10_000)), label=name)
        for name, (lo, hi) in FIELD_DOMAINS.items()
        if name in FIELDS
    }
    return Packet(**fields)


class TestInterpreterEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(nf_program(), st.data())
    def test_matches_cpython(self, source, data):
        pkt = random_packet(data)

        # CPython oracle: emulate the packet with a tiny object.
        class PyPacket:
            pass

        py_pkt = PyPacket()
        for name in FIELDS + ["length"]:
            setattr(py_pkt, name, getattr(pkt, name))
        sent = []
        namespace = {"send_packet": lambda p, port=None: sent.append(p.length)}
        exec(source, namespace)  # noqa: S102 - generated test source
        namespace["cb"](py_pkt)

        program = parse_program(source, entry="cb")
        interp = Interpreter(program=program)
        out = interp.process_packet(pkt.copy())
        assert [p.length for p, _ in out] == sent


class TestPrettyFixpoint:
    @settings(max_examples=40, deadline=None)
    @given(nf_program())
    def test_pretty_parse_fixpoint(self, source):
        program = parse_program(source, entry="cb")
        text = pretty_program(program)
        again = pretty_program(parse_program(text, entry="cb"))
        assert text == again


class TestCfgWellFormed:
    @settings(max_examples=40, deadline=None)
    @given(nf_program())
    def test_reachability_and_dominators(self, source):
        program = parse_program(source, entry="cb")
        fn = program.entry_function
        cfg = build_cfg(fn.body)
        stmt_sids = {s.sid for s in fn.stmts()}
        assert stmt_sids <= cfg.reachable(ENTRY)
        assert EXIT in cfg.reachable(ENTRY)
        idom = immediate_dominators(cfg)
        for sid in stmt_sids:
            walk, seen = sid, set()
            while idom[walk] != walk:
                assert walk not in seen
                seen.add(walk)
                walk = idom[walk]
            assert walk == ENTRY


class TestSliceSoundness:
    @settings(max_examples=40, deadline=None)
    @given(nf_program(), st.data())
    def test_slice_preserves_criterion(self, source, data):
        """Weiser soundness: the executable backward slice computes the
        same criterion values as the full program."""
        pkt = random_packet(data)
        program = parse_program(source, entry="cb")
        flat = flatten_program(program)
        pdg = build_pdg(flat.block, flat.entry_vars())
        send = [
            s for s in iter_block(flat.block)
            if "send_packet" in str(getattr(s, "value", ""))
        ][-1]
        slice_sids = StaticSlicer(pdg).backward(SliceCriterion(send.sid, None))
        sliced, _ = executable_slice(flat.block, slice_sids, pdg)

        full = Interpreter()
        full.run_block(list(flat.block), Env(globals={"pkt": pkt.copy()}))
        part = Interpreter()
        part.run_block(list(sliced), Env(globals={"pkt": pkt.copy()}))
        assert [p.length for p, _ in full.sent] == [p.length for p, _ in part.sent]


class TestSliceClosure:
    @settings(max_examples=40, deadline=None)
    @given(nf_program())
    def test_slice_closed_under_dependences(self, source):
        """A backward slice is a fixpoint: every member's data and
        control predecessors are members too."""
        program = parse_program(source, entry="cb")
        flat = flatten_program(program)
        pdg = build_pdg(flat.block, flat.entry_vars())
        send = [
            s for s in iter_block(flat.block)
            if "send_packet" in str(getattr(s, "value", ""))
        ][-1]
        sids = StaticSlicer(pdg).backward(SliceCriterion(send.sid, None))
        for sid in sids:
            if sid == send.sid:
                continue
            assert pdg.data_preds.get(sid, set()) <= sids
            assert pdg.control_preds.get(sid, set()) <= sids

    @settings(max_examples=25, deadline=None)
    @given(nf_program())
    def test_slice_monotone_in_criterion(self, source):
        """Slicing on a subset of variables yields a subset slice."""
        program = parse_program(source, entry="cb")
        flat = flatten_program(program)
        pdg = build_pdg(flat.block, flat.entry_vars())
        out_stmt = [
            s for s in iter_block(flat.block)
            if "out" in {n for n in _defs(s)}
        ]
        if not out_stmt:
            return
        stmt = out_stmt[-1]
        full = StaticSlicer(pdg).backward(SliceCriterion(stmt.sid, None))
        from repro.lang.ir import stmt_uses

        for var in sorted(stmt_uses(stmt)):
            partial = StaticSlicer(pdg).backward(
                SliceCriterion(stmt.sid, frozenset({var}))
            )
            assert partial <= full


def _defs(stmt):
    from repro.lang.ir import stmt_defs

    return stmt_defs(stmt)


class TestPathPartition:
    @settings(max_examples=25, deadline=None)
    @given(nf_program(), st.data())
    def test_paths_partition_inputs(self, source, data):
        program = parse_program(source, entry="cb")
        flat = flatten_program(program)
        engine = SymbolicEngine()
        paths = engine.explore(list(flat.block), {"pkt": SymPacket.fresh()})
        if engine.stats.exhausted:
            return  # partition claim only holds for complete exploration
        pkt = random_packet(data)
        assignment = {f"v:pkt.{name}": getattr(pkt, name) for name in FIELD_DOMAINS}
        matching = [
            p for p in paths
            if all(bool(eval_sym(c, assignment)) for c in p.constraints)
        ]
        assert len(matching) == 1
