"""Tests for the packet substrate: addresses, packets, flows."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.net.addresses import (
    MAX_IPV4,
    int_to_ip,
    int_to_mac,
    ip_to_int,
    mac_to_int,
    valid_port,
)
from repro.net.flow import FiveTuple, bidirectional_key, flow_of
from repro.net.packet import (
    FIELD_DOMAINS,
    PACKET_FIELDS,
    Packet,
    PROTO_TCP,
    TCP_SYN,
    tcp_packet,
)


class TestAddresses:
    def test_ip_roundtrip_known(self):
        assert int_to_ip(ip_to_int("192.168.1.1")) == "192.168.1.1"

    def test_ip_extremes(self):
        assert ip_to_int("0.0.0.0") == 0
        assert ip_to_int("255.255.255.255") == MAX_IPV4

    def test_ip_malformed(self):
        with pytest.raises(ValueError):
            ip_to_int("1.2.3")
        with pytest.raises(ValueError):
            ip_to_int("1.2.3.256")
        with pytest.raises(ValueError):
            int_to_ip(-1)

    def test_mac_roundtrip(self):
        assert int_to_mac(mac_to_int("aa:bb:cc:dd:ee:ff")) == "aa:bb:cc:dd:ee:ff"

    def test_mac_malformed(self):
        with pytest.raises(ValueError):
            mac_to_int("aa:bb:cc")

    def test_valid_port(self):
        assert valid_port(0) and valid_port(65535)
        assert not valid_port(-1) and not valid_port(65536)

    @given(st.integers(0, MAX_IPV4))
    def test_ip_roundtrip_property(self, value):
        assert ip_to_int(int_to_ip(value)) == value


class TestPacket:
    def test_defaults(self):
        p = Packet()
        assert p.proto == PROTO_TCP
        assert p.ttl == 64

    def test_field_write_and_read(self):
        p = Packet()
        p.dport = 8080
        assert p.dport == 8080

    def test_unknown_field_rejected(self):
        p = Packet()
        with pytest.raises(AttributeError):
            p.no_such_field = 1
        with pytest.raises(AttributeError):
            Packet(nonsense=1)  # type: ignore[call-arg]

    def test_out_of_domain_rejected(self):
        p = Packet()
        with pytest.raises(ValueError):
            p.dport = 70000
        with pytest.raises(ValueError):
            p.ttl = -1

    def test_non_int_rejected(self):
        p = Packet()
        with pytest.raises(TypeError):
            p.dport = "80"  # type: ignore[assignment]
        with pytest.raises(TypeError):
            p.dport = True  # type: ignore[assignment]

    def test_copy_is_independent(self):
        p = Packet(dport=80)
        q = p.copy()
        q.dport = 443
        assert p.dport == 80

    def test_equality_and_hash(self):
        assert Packet(dport=80) == Packet(dport=80)
        assert Packet(dport=80) != Packet(dport=81)
        assert hash(Packet(dport=80)) == hash(Packet(dport=80))

    def test_dict_roundtrip(self):
        p = tcp_packet(1, 1234, 2, 80, flags=TCP_SYN)
        assert Packet.from_dict(p.to_dict()) == p

    def test_every_field_has_domain(self):
        assert set(PACKET_FIELDS) == set(FIELD_DOMAINS)

    def test_has_flag(self):
        p = Packet(tcp_flags=TCP_SYN)
        assert p.has_flag(TCP_SYN)
        assert not p.has_flag(1)

    @given(
        st.fixed_dictionaries(
            {
                name: st.integers(lo, hi)
                for name, (lo, hi) in list(FIELD_DOMAINS.items())[:6]
            }
        )
    )
    def test_arbitrary_in_domain_accepted(self, fields):
        p = Packet(**fields)
        for name, value in fields.items():
            assert getattr(p, name) == value


class TestFlow:
    def test_flow_of(self):
        p = tcp_packet(1, 1000, 2, 80)
        assert flow_of(p) == FiveTuple(1, 1000, 2, 80, PROTO_TCP)

    def test_reversed(self):
        ft = FiveTuple(1, 1000, 2, 80, PROTO_TCP)
        assert ft.reversed() == FiveTuple(2, 80, 1, 1000, PROTO_TCP)
        assert ft.reversed().reversed() == ft

    def test_four_tuple(self):
        assert FiveTuple(1, 2, 3, 4, 6).four_tuple() == (1, 2, 3, 4)

    def test_bidirectional_key_symmetric(self):
        fwd = tcp_packet(1, 1000, 2, 80)
        rev = tcp_packet(2, 80, 1, 1000)
        assert bidirectional_key(fwd) == bidirectional_key(rev)
