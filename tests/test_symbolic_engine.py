"""Tests for the symbolic execution engine."""

from __future__ import annotations

import pytest

from repro.lang.parser import parse_program
from repro.pdg.flatten import flatten_program
from repro.symbolic.engine import EngineConfig, SymbolicEngine
from repro.symbolic.expr import SApp, SVar, SymDict, SymPacket, eval_sym, leaf_key
from repro.symbolic.solver import Solver


def explore(source: str, extra_env=None, watched=None, config=None, entry="cb"):
    program = parse_program(source, entry=entry)
    flat = flatten_program(program)
    env = {"pkt": SymPacket.fresh()}
    env.update(extra_env or {})
    engine = SymbolicEngine(config)
    # skip the module part: callers pass state explicitly
    entry_block = [s for s in flat.block if s.sid not in flat.module_sids]
    paths = engine.explore(entry_block, env, watched=watched or set())
    return paths, engine


class TestBranching:
    def test_two_way_fork(self):
        paths, engine = explore(
            "def cb(pkt):\n    if pkt.dport == 80:\n        send_packet(pkt)\n"
        )
        assert len(paths) == 2
        assert engine.stats.forks == 1
        kinds = sorted(p.drops for p in paths)
        assert kinds == [False, True]

    def test_concrete_condition_no_fork(self):
        paths, engine = explore(
            "def cb(pkt):\n    x = 3\n    if x > 1:\n        send_packet(pkt)\n"
        )
        assert len(paths) == 1
        assert engine.stats.forks == 0

    def test_infeasible_arm_pruned(self):
        paths, _ = explore(
            "def cb(pkt):\n"
            "    if pkt.dport == 80:\n"
            "        if pkt.dport == 81:\n"
            "            send_packet(pkt)\n"
        )
        # dport==80 ∧ dport==81 is unsat: only 2 paths survive.
        assert len(paths) == 2
        assert all(p.drops for p in paths)

    def test_nested_forks_multiply(self):
        paths, _ = explore(
            "def cb(pkt):\n"
            "    if pkt.dport == 80:\n"
            "        x = 1\n"
            "    if pkt.sport == 80:\n"
            "        y = 1\n"
        )
        assert len(paths) == 4

    def test_path_conditions_recorded(self):
        paths, _ = explore(
            "def cb(pkt):\n    if pkt.ttl > 5:\n        send_packet(pkt)\n"
        )
        send_path = next(p for p in paths if not p.drops)
        assert len(send_path.constraints) == 1
        solver = Solver()
        model = solver.model(send_path.constraints)
        assert model[leaf_key(SVar("pkt.ttl", 0, 255))] > 5

    def test_branch_outcomes_recorded(self):
        paths, _ = explore(
            "def cb(pkt):\n    if pkt.ttl > 5:\n        send_packet(pkt)\n"
        )
        outcomes = {p.branches[0][1] for p in paths}
        assert outcomes == {True, False}


class TestLoops:
    def test_concrete_loop_executes(self):
        paths, _ = explore(
            "def cb(pkt):\n"
            "    t = 0\n"
            "    for i in range(4):\n"
            "        t += i\n"
            "    pkt.ttl = t\n"
            "    send_packet(pkt)\n"
        )
        assert len(paths) == 1
        assert paths[0].sent[0][0]["ttl"] == 6

    def test_symbolic_loop_bounded(self):
        config = EngineConfig(loop_bound=3, keep_pruned=True)
        paths, engine = explore(
            "def cb(pkt):\n"
            "    i = 0\n"
            "    while i < pkt.ttl:\n"
            "        i += 1\n"
            "    send_packet(pkt)\n",
            config=config,
        )
        done = [p for p in paths if p.status == "done"]
        # bounded exploration: exits after 0..bound iterations
        assert 1 <= len(done) <= config.loop_bound + 1

    def test_concrete_infinite_loop_truncated(self):
        config = EngineConfig(concrete_loop_bound=50, keep_pruned=True)
        paths, engine = explore(
            "def cb(pkt):\n    while True:\n        x = 1\n",
            config=config,
        )
        assert engine.stats.paths_truncated == 1


class TestStateDicts:
    def test_membership_forks_and_assumes(self):
        table = SymDict("table")
        paths, _ = explore(
            "def cb(pkt):\n"
            "    k = (pkt.ip_src, pkt.sport)\n"
            "    if k in table:\n"
            "        send_packet(pkt)\n",
            extra_env={"table": table},
        )
        assert len(paths) == 2
        member_path = next(p for p in paths if not p.drops)
        atom = member_path.constraints[0]
        assert isinstance(atom, SApp) and atom.op == "member"

    def test_membership_consistent_within_path(self):
        paths, _ = explore(
            "def cb(pkt):\n"
            "    k = pkt.ip_src\n"
            "    if k in table:\n"
            "        x = 1\n"
            "    if k in table:\n"
            "        send_packet(pkt)\n",
            extra_env={"table": SymDict("table")},
        )
        # The second test reuses the assumption: only 2 paths, not 4.
        assert len(paths) == 2

    def test_write_then_membership_is_concrete(self):
        paths, _ = explore(
            "def cb(pkt):\n"
            "    table[pkt.ip_src] = 1\n"
            "    if pkt.ip_src in table:\n"
            "        send_packet(pkt)\n",
            extra_env={"table": SymDict("table")},
        )
        assert len(paths) == 1
        assert not paths[0].drops

    def test_read_of_assumed_key_constrains_path(self):
        paths, _ = explore(
            "def cb(pkt):\n"
            "    v = table[pkt.ip_src]\n"
            "    if v == 3:\n"
            "        send_packet(pkt)\n",
            extra_env={"table": SymDict("table")},
        )
        for p in paths:
            assert any(
                isinstance(c, SApp) and c.op == "member" for c in p.constraints
            )

    def test_delete_then_membership_false(self):
        paths, _ = explore(
            "def cb(pkt):\n"
            "    table[pkt.ip_src] = 1\n"
            "    del table[pkt.ip_src]\n"
            "    if pkt.ip_src in table:\n"
            "        send_packet(pkt)\n",
            extra_env={"table": SymDict("table")},
        )
        assert len(paths) == 1
        assert paths[0].drops

    def test_watched_writes_recorded(self):
        paths, _ = explore(
            "def cb(pkt):\n"
            "    table[pkt.ip_src] = 1\n"
            "    counter = counter + 1\n"
            "    send_packet(pkt)\n",
            extra_env={"table": SymDict("table"), "counter": SVar("st.counter", 0, 100)},
            watched={"table", "counter"},
        )
        written = {var for _, var in paths[0].state_writes}
        assert written == {"table", "counter"}


class TestPacketHandling:
    def test_field_rewrite_appears_in_sent(self):
        paths, _ = explore(
            "def cb(pkt):\n    pkt.dport = 8080\n    send_packet(pkt)\n"
        )
        assert paths[0].sent[0][0]["dport"] == 8080

    def test_unmodified_fields_stay_symbolic(self):
        paths, _ = explore("def cb(pkt):\n    send_packet(pkt)\n")
        ttl = paths[0].sent[0][0]["ttl"]
        assert isinstance(ttl, SVar) and ttl.name == "pkt.ttl"

    def test_send_port_recorded(self):
        paths, _ = explore("def cb(pkt):\n    send_packet(pkt, 2)\n")
        assert paths[0].sent[0][1] == 2

    def test_drop_paths_have_no_sends(self):
        paths, _ = explore(
            "def cb(pkt):\n"
            "    if pkt.ttl == 0:\n"
            "        return\n"
            "    send_packet(pkt)\n"
        )
        drop = next(p for p in paths if p.drops)
        assert drop.sent == []


class TestPathDisjointness:
    def test_conditions_partition_inputs(self):
        """Sampled concrete packets satisfy exactly one path condition."""
        source = (
            "def cb(pkt):\n"
            "    if pkt.dport == 80:\n"
            "        if pkt.ttl > 10:\n"
            "            send_packet(pkt)\n"
            "    else:\n"
            "        if pkt.sport == 53:\n"
            "            send_packet(pkt)\n"
        )
        paths, _ = explore(source)
        import random

        rng = random.Random(5)
        from repro.net.packet import FIELD_DOMAINS

        for _ in range(50):
            assignment = {
                f"v:pkt.{name}": rng.randint(lo, hi)
                for name, (lo, hi) in FIELD_DOMAINS.items()
            }
            matching = [
                p
                for p in paths
                if all(bool(eval_sym(c, assignment)) for c in p.constraints)
            ]
            assert len(matching) == 1


class TestErrorsAndLimits:
    def test_undefined_name_is_path_error(self):
        config = EngineConfig(keep_pruned=True)
        paths, engine = explore("def cb(pkt):\n    x = nope\n", config=config)
        assert engine.stats.paths_error == 1

    def test_max_paths_marks_exhausted(self):
        source = "def cb(pkt):\n" + "".join(
            f"    if pkt.ttl == {i}:\n        x{i} = 1\n" for i in range(8)
        )
        config = EngineConfig(max_paths=4)
        paths, engine = explore(source, config=config)
        assert engine.stats.exhausted
        assert len(paths) == 4
