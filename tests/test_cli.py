"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import load_spec, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestLoadSpec:
    def test_corpus_name(self):
        spec = load_spec("monitor")
        assert spec.name == "monitor"

    def test_source_file(self, tmp_path):
        path = tmp_path / "mynf.py"
        path.write_text("def cb(pkt):\n    send_packet(pkt)\n")
        spec = load_spec(str(path), entry="cb")
        assert spec.name == "mynf"
        assert spec.entry == "cb"

    def test_unknown_target(self):
        with pytest.raises(SystemExit):
            load_spec("does-not-exist")


class TestCommands:
    def test_list(self, capsys):
        code, out = run_cli(capsys, "list")
        assert code == 0
        assert "loadbalancer" in out and "snortlite" in out

    def test_show(self, capsys):
        code, out = run_cli(capsys, "show", "monitor")
        assert code == 0
        assert "def monitor_handler" in out

    def test_synthesize_table(self, capsys):
        code, out = run_cli(capsys, "synthesize", "monitor", "--stats")
        assert code == 0
        assert "default action: drop" in out
        assert "paths" in out

    def test_synthesize_json(self, capsys):
        code, out = run_cli(capsys, "synthesize", "monitor", "--json")
        assert code == 0
        data = json.loads(out)
        assert data["name"] == "monitor"

    def test_synthesize_user_file(self, capsys, tmp_path):
        path = tmp_path / "drop80.py"
        path.write_text(
            "def cb(pkt):\n"
            "    if pkt.dport == 80:\n"
            "        return\n"
            "    send_packet(pkt)\n"
        )
        code, out = run_cli(capsys, "synthesize", str(path), "--entry", "cb")
        assert code == 0
        assert "pkt.dport" in out

    def test_slice(self, capsys):
        code, out = run_cli(capsys, "slice", "loadbalancer")
        assert code == 0
        assert ">> " in out
        # log updates are not highlighted
        for line in out.splitlines():
            if "pass_stat += 1" in line:
                assert not line.startswith(">>")

    def test_categories(self, capsys):
        code, out = run_cli(capsys, "categories", "loadbalancer")
        assert code == 0
        assert "oisVar" in out and "f2b_nat" in out

    def test_difftest_pass(self, capsys):
        code, out = run_cli(capsys, "difftest", "monitor", "-n", "50")
        assert code == 0
        assert "IDENTICAL" in out

    def test_testgen(self, capsys):
        code, out = run_cli(capsys, "testgen", "loadbalancer")
        assert code == 0
        assert "match the NF behaviour" in out

    def test_fsm_text_and_dot(self, capsys):
        code, out = run_cli(capsys, "fsm", "loadbalancer")
        assert code == 0
        assert "f2b_nat" in out
        code, out = run_cli(capsys, "fsm", "loadbalancer", "--dot")
        assert code == 0
        assert out.startswith("digraph")

    def test_workload(self, capsys, tmp_path):
        path = tmp_path / "w.pcap"
        code, out = run_cli(capsys, "workload", "monitor", str(path), "-n", "20")
        assert code == 0
        from repro.net.pcap import read_pcap

        assert len(read_pcap(path)) >= 20

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        import repro

        assert repro.__version__ in out

    def test_profile_subcommand(self, capsys):
        code, out = run_cli(capsys, "profile", "nat")
        assert code == 0
        assert "Per-phase profile" in out
        for phase in (
            "parse", "normalize", "flatten", "pdg",
            "slice", "classify", "symbolic", "refactor",
        ):
            assert phase in out
        assert "se.explore" in out
        assert "solver.checks" in out

    def test_trace_flag_writes_valid_jsonl(self, capsys, tmp_path):
        out_path = tmp_path / "trace.jsonl"
        code, _ = run_cli(capsys, "--trace", str(out_path), "synthesize", "monitor")
        assert code == 0
        events = [json.loads(line) for line in out_path.read_text().splitlines()]
        assert events
        ends = [e for e in events if e["ev"] == "E"]
        assert ends and all("dur" in e and e["dur"] >= 0.0 for e in ends)
        names = {e["name"] for e in events}
        assert "phase.symbolic" in names and "se.explore" in names
        # every end matches a start of the same span id
        begins = {e["span"] for e in events if e["ev"] == "B"}
        assert {e["span"] for e in ends} == begins

    def test_profile_flag_appends_table(self, capsys):
        code, out = run_cli(capsys, "--profile", "synthesize", "monitor")
        assert code == 0
        assert "default action" in out  # the command's own output first
        assert "Per-phase profile" in out

    def test_observer_uninstalled_after_run(self, capsys):
        from repro import obs

        run_cli(capsys, "--profile", "synthesize", "monitor")
        assert obs.trace.active() is None
        assert not obs.metrics.active().enabled
