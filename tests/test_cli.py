"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import load_spec, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestLoadSpec:
    def test_corpus_name(self):
        spec = load_spec("monitor")
        assert spec.name == "monitor"

    def test_source_file(self, tmp_path):
        path = tmp_path / "mynf.py"
        path.write_text("def cb(pkt):\n    send_packet(pkt)\n")
        spec = load_spec(str(path), entry="cb")
        assert spec.name == "mynf"
        assert spec.entry == "cb"

    def test_unknown_target(self):
        with pytest.raises(SystemExit):
            load_spec("does-not-exist")


class TestCommands:
    def test_list(self, capsys):
        code, out = run_cli(capsys, "list")
        assert code == 0
        assert "loadbalancer" in out and "snortlite" in out

    def test_show(self, capsys):
        code, out = run_cli(capsys, "show", "monitor")
        assert code == 0
        assert "def monitor_handler" in out

    def test_synthesize_table(self, capsys):
        code, out = run_cli(capsys, "synthesize", "monitor", "--stats")
        assert code == 0
        assert "default action: drop" in out
        assert "paths" in out

    def test_synthesize_json(self, capsys):
        code, out = run_cli(capsys, "synthesize", "monitor", "--json")
        assert code == 0
        data = json.loads(out)
        assert data["name"] == "monitor"

    def test_synthesize_user_file(self, capsys, tmp_path):
        path = tmp_path / "drop80.py"
        path.write_text(
            "def cb(pkt):\n"
            "    if pkt.dport == 80:\n"
            "        return\n"
            "    send_packet(pkt)\n"
        )
        code, out = run_cli(capsys, "synthesize", str(path), "--entry", "cb")
        assert code == 0
        assert "pkt.dport" in out

    def test_slice(self, capsys):
        code, out = run_cli(capsys, "slice", "loadbalancer")
        assert code == 0
        assert ">> " in out
        # log updates are not highlighted
        for line in out.splitlines():
            if "pass_stat += 1" in line:
                assert not line.startswith(">>")

    def test_categories(self, capsys):
        code, out = run_cli(capsys, "categories", "loadbalancer")
        assert code == 0
        assert "oisVar" in out and "f2b_nat" in out

    def test_difftest_pass(self, capsys):
        code, out = run_cli(capsys, "difftest", "monitor", "-n", "50")
        assert code == 0
        assert "IDENTICAL" in out

    def test_testgen(self, capsys):
        code, out = run_cli(capsys, "testgen", "loadbalancer")
        assert code == 0
        assert "match the NF behaviour" in out

    def test_fsm_text_and_dot(self, capsys):
        code, out = run_cli(capsys, "fsm", "loadbalancer")
        assert code == 0
        assert "f2b_nat" in out
        code, out = run_cli(capsys, "fsm", "loadbalancer", "--dot")
        assert code == 0
        assert out.startswith("digraph")

    def test_workload(self, capsys, tmp_path):
        path = tmp_path / "w.pcap"
        code, out = run_cli(capsys, "workload", "monitor", str(path), "-n", "20")
        assert code == 0
        from repro.net.pcap import read_pcap

        assert len(read_pcap(path)) >= 20
