"""End-to-end request observability: context, logs, recorder, /debugz.

The PR-6 acceptance behaviours under test:

- a client-sent W3C ``traceparent`` is honoured end-to-end: the same
  trace id shows up in the response envelope and the flight recorder,
  and the worker's pipeline spans (``se.explore``) are stitched under
  the request's span tree;
- two concurrent requests never cross-contaminate traces;
- a deadline kill (504) still reports its trace id and the phases that
  completed before the alarm fired;
- the disabled path stays cheap and silent (``tracing=False`` records
  summaries only, no span trees);
- the support layers behave: tolerant traceparent parsing, labeled
  Prometheus exposition with HELP/TYPE metadata, a JsonlWriter that
  degrades (once, with a structured warning) instead of raising, and a
  flight recorder whose memory stays bounded by construction.
"""

from __future__ import annotations

import io
import json
import logging
import threading
import time
from contextlib import contextmanager

import pytest

from repro.obs import context as obs_context
from repro.obs import log as obs_log
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry, labeled
from repro.obs.recorder import (
    MAX_SPANS_PER_REQUEST,
    FlightRecorder,
    RequestRecord,
    phases_from_spans,
    render_span_tree,
    to_chrome_trace,
)
from repro.obs.report import render_prometheus
from repro.serve import ServeClient, ServeConfig, ServerHandle


# -- trace context ------------------------------------------------------------


class TestTraceContext:
    def test_traceparent_roundtrip(self):
        ctx = obs_context.new_context()
        parsed = obs_context.parse_traceparent(ctx.traceparent())
        assert parsed is not None
        assert parsed.trace_id == ctx.trace_id
        assert parsed.span_id == ctx.span_id
        assert parsed.sampled

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00-short-span-01",
            "ff-" + "a" * 32 + "-" + "b" * 16 + "-01",  # forbidden version
            "00-" + "0" * 32 + "-" + "b" * 16 + "-01",  # all-zero trace id
            "00-" + "a" * 32 + "-" + "0" * 16 + "-01",  # all-zero span id
        ],
    )
    def test_malformed_traceparent_rejected(self, header):
        assert obs_context.parse_traceparent(header) is None

    def test_child_keeps_trace_changes_span(self):
        ctx = obs_context.new_context(request_id="req-x")
        child = ctx.child()
        assert child.trace_id == ctx.trace_id
        assert child.span_id != ctx.span_id
        assert child.request_id == "req-x"

    def test_dict_roundtrip_crosses_process_boundary(self):
        ctx = obs_context.new_context().with_request_id("req-abc")
        back = obs_context.TraceContext.from_dict(ctx.to_dict())
        assert back.trace_id == ctx.trace_id
        assert back.request_id == "req-abc"

    def test_ambient_binding_scopes(self):
        assert obs_context.current() is None
        ctx = obs_context.new_context()
        with obs_context.bound(ctx):
            assert obs_context.current() is ctx
            with obs_context.bound(None):
                assert obs_context.current() is None
            assert obs_context.current() is ctx
        assert obs_context.current() is None


# -- labeled metrics / prometheus exposition ----------------------------------


class TestLabeledPrometheus:
    def test_help_and_type_once_per_family(self):
        registry = MetricsRegistry()
        registry.histogram(
            labeled("serve.endpoint_seconds", endpoint="synthesize", status=200)
        ).observe(0.01)
        registry.histogram(
            labeled("serve.endpoint_seconds", endpoint="simulate", status=400)
        ).observe(0.02)
        registry.counter("serve.requests_total").inc()
        text = render_prometheus(registry.snapshot())
        assert text.count("# HELP repro_serve_endpoint_seconds ") == 1
        assert text.count("# TYPE repro_serve_endpoint_seconds histogram") == 1
        assert (
            'repro_serve_endpoint_seconds_bucket{endpoint="synthesize",'
            'status="200",le="+Inf"} 1' in text
        )
        assert 'repro_serve_endpoint_seconds_count{endpoint="simulate",status="400"} 1' in text
        # Unlabeled metric names are byte-compatible with the old exposition.
        assert "\nrepro_serve_requests_total 1\n" in text

    def test_labeled_name_is_sorted_and_stable(self):
        assert (
            labeled("f.x", b=2, a="y")
            == labeled("f.x", a="y", b=2)
            == 'f.x{a="y",b="2"}'
        )


# -- structured logging -------------------------------------------------------


@contextmanager
def _structured_log():
    """configure() into a StringIO, restoring stdlib behaviour after."""
    stream = io.StringIO()
    handler = obs_log.configure(stream=stream)
    try:
        yield stream
    finally:
        root = logging.getLogger("repro")
        root.removeHandler(handler)
        root.propagate = True
        obs_log._handler = None


class TestStructuredLog:
    def test_json_line_with_trace_injection(self):
        with _structured_log() as stream:
            ctx = obs_context.new_context().with_request_id("req-42")
            with obs_context.bound(ctx):
                obs_log.log_event(
                    obs_log.get_logger("repro.serve"),
                    logging.INFO,
                    "serve.request",
                    "synthesize -> 200",
                    op="synthesize",
                    status=200,
                )
        line = json.loads(stream.getvalue().strip())
        assert line["event"] == "serve.request"
        assert line["trace_id"] == ctx.trace_id
        assert line["request_id"] == "req-42"
        assert line["status"] == 200
        assert line["level"] == "info"

    def test_no_context_no_trace_keys(self):
        with _structured_log() as stream:
            obs_log.log_event(
                obs_log.get_logger("repro.cache"), logging.WARNING,
                "cache.corrupt", "bad file", path="/x",
            )
        line = json.loads(stream.getvalue().strip())
        assert "trace_id" not in line
        assert line["path"] == "/x"


# -- JsonlWriter degrade ------------------------------------------------------


class TestJsonlWriterDegrade:
    def test_closed_sink_degrades_with_one_warning(self, caplog):
        fh = io.StringIO()
        writer = obs_trace.JsonlWriter(fh)
        writer({"ev": "B", "span": 1})
        fh.close()
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            writer({"ev": "E", "span": 1})  # must not raise
            writer({"ev": "B", "span": 2})  # silently dropped
        warnings = [r for r in caplog.records if "trace sink failed" in r.message]
        assert len(warnings) == 1
        writer.close()  # idempotent, exception-tolerant

    def test_tracer_keeps_working_after_sink_breaks(self):
        fh = io.StringIO()
        writer = obs_trace.JsonlWriter(fh)
        tracer = obs_trace.Tracer(sink=writer)
        fh.close()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [s.name for s in tracer.spans] == ["b", "a"]
        writer.close()


# -- flight recorder ----------------------------------------------------------


def _rec(i, status=200, elapsed=1.0, spans=None):
    return RequestRecord(
        request_id=f"req-{i}", trace_id=f"t{i}", op="synthesize",
        status=status, elapsed_ms=elapsed, spans=spans,
    )


class TestFlightRecorder:
    def test_ring_is_bounded_and_most_recent_first(self):
        rec = FlightRecorder(capacity=4, keep_slow=2, keep_errors=2)
        for i in range(10):
            rec.record(_rec(i, elapsed=float(i)))
        recent = rec.recent()
        assert [r["request_id"] for r in recent] == [
            "req-9", "req-8", "req-7", "req-6"
        ]
        stats = rec.stats()
        assert stats["recorded_total"] == 10
        assert stats["recent"] == 4

    def test_slow_pins_beyond_ring(self):
        rec = FlightRecorder(capacity=2, keep_slow=2, keep_errors=2)
        rec.record(_rec("slowest", elapsed=500.0))
        for i in range(6):
            rec.record(_rec(i, elapsed=1.0))
        slow_ids = [r["request_id"] for r in rec.slow()]
        assert slow_ids[0] == "req-slowest"
        assert rec.get("req-slowest") is not None  # evicted from ring, pinned

    def test_errors_kept_429_excluded(self):
        rec = FlightRecorder(capacity=8, keep_slow=2, keep_errors=4)
        rec.record(_rec("ok", status=200))
        rec.record(_rec("bad", status=500))
        rec.record(_rec("busy", status=429))
        rec.record(_rec("late", status=504))
        err_ids = [r["request_id"] for r in rec.errors()]
        assert err_ids == ["req-late", "req-bad"]

    def test_span_cap_truncates_and_counts(self):
        spans = [
            {"span": i, "parent": None, "name": "s", "start": 0.0, "dur": 0.0,
             "attrs": {}}
            for i in range(MAX_SPANS_PER_REQUEST + 50)
        ]
        rec = FlightRecorder(capacity=2)
        rec.record(_rec("big", spans=spans))
        detail = rec.get("req-big").detail()
        assert len(detail["spans"]) == MAX_SPANS_PER_REQUEST
        assert detail["n_spans_dropped"] == 50

    def test_chrome_trace_shape(self):
        spans = [
            {"span": 1, "parent": None, "name": "request.x", "start": 0.0,
             "dur": 0.01, "attrs": {"op": "x"}},
            {"span": 2, "parent": 1, "name": "worker", "start": 0.001,
             "dur": 0.008, "attrs": {}},
        ]
        rec = _rec("c", spans=spans)
        chrome = to_chrome_trace(rec.detail())
        assert len(chrome["traceEvents"]) == 2
        ev = chrome["traceEvents"][0]
        assert ev["ph"] == "X" and ev["ts"] == 0.0 and ev["dur"] == 10000.0
        assert chrome["otherData"]["request_id"] == "req-c"
        tree = render_span_tree(rec.detail())
        assert "request.x" in tree and "  worker" in tree

    def test_phases_from_spans(self):
        spans = [
            {"name": "phase.parse", "dur": 0.002},
            {"name": "phase.slice", "dur": 0.001},
            {"name": "phase.slice", "dur": 0.003},
            {"name": "se.explore", "dur": 0.5},
        ]
        phases = phases_from_spans(spans)
        assert phases == pytest.approx({"parse": 2.0, "slice": 4.0})


# -- integration: real sockets, real workers ----------------------------------


@contextmanager
def serve(monkeypatch, *, workers=1, test_ops=False, **config_kwargs):
    if test_ops:
        monkeypatch.setenv("REPRO_SERVE_TEST_OPS", "1")
    config = ServeConfig(port=0, workers=workers, queue_size=8, **config_kwargs)
    handle = ServerHandle(config)
    handle.start()
    try:
        yield handle, ServeClient("127.0.0.1", handle.port, timeout=60)
    finally:
        handle.stop()


def _walk_to_root(spans, span):
    by_id = {s["span"]: s for s in spans}
    names = [span["name"]]
    while span.get("parent") is not None:
        span = by_id[span["parent"]]
        names.append(span["name"])
    return names


class TestRequestTracingEndToEnd:
    def test_client_traceparent_reaches_debugz_and_stitches(self, monkeypatch):
        with serve(monkeypatch, workers=1) as (handle, client):
            ctx = obs_context.new_context()
            response = client.request(
                "POST", "/v1/synthesize", {"nf": "monitor"}, ctx=ctx
            ).raise_for_status()
            assert response.trace_id == ctx.trace_id
            assert response.request_id.startswith("req-")
            assert response.payload["trace_id"] == ctx.trace_id

            detail = client.trace_detail(response.request_id)
            assert detail["trace_id"] == ctx.trace_id
            assert detail["status"] == 200
            spans = detail["spans"]
            assert spans[0]["name"] == "request.synthesize"
            names = {s["name"] for s in spans}
            assert {"queue.wait", "worker", "se.explore"} <= names
            # The worker's pipeline spans are parented under the stitched
            # worker span, which hangs off the request root.
            explore = next(s for s in spans if s["name"] == "se.explore")
            lineage = _walk_to_root(spans, explore)
            assert lineage[-1] == "request.synthesize"
            assert "worker" in lineage
            # Phase breakdown is derived from the same batch.
            assert "parse" in detail["phases_ms"]

            # The structured summary also lands in /debugz/requests.
            listing = client.debugz("requests").raise_for_status().result
            ids = [r["request_id"] for r in listing["requests"]]
            assert response.request_id in ids

            # Labeled per-endpoint latency histograms are exposed.
            text = client.metrics_text()
            assert "# HELP repro_serve_endpoint_seconds" in text
            assert (
                'repro_serve_endpoint_seconds_bucket{endpoint="synthesize",'
                'status="200",le=' in text
            )
            assert "repro_serve_queue_wait_seconds_count" in text
            snapshot = client.metrics()
            assert snapshot["counters"]["serve.traced_requests"] >= 1

    def test_concurrent_requests_do_not_cross_contaminate(self, monkeypatch):
        with serve(monkeypatch, workers=2) as (handle, client):
            ctxs = {
                "monitor": obs_context.new_context(),
                "firewall": obs_context.new_context(),
            }
            responses = {}
            lock = threading.Lock()

            def fire(nf):
                r = client.request(
                    "POST", "/v1/synthesize", {"nf": nf}, ctx=ctxs[nf]
                ).raise_for_status()
                with lock:
                    responses[nf] = r

            threads = [
                threading.Thread(target=fire, args=(nf,)) for nf in ctxs
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            assert responses["monitor"].trace_id == ctxs["monitor"].trace_id
            assert responses["firewall"].trace_id == ctxs["firewall"].trace_id
            assert (
                responses["monitor"].request_id
                != responses["firewall"].request_id
            )
            for nf, r in responses.items():
                detail = client.trace_detail(r.request_id)
                assert detail["trace_id"] == ctxs[nf].trace_id
                synth = [
                    s for s in detail["spans"] if s["name"] == "synthesize"
                ]
                assert len(synth) == 1
                assert synth[0]["attrs"]["nf"] == nf

    def test_deadline_kill_reports_trace_and_partial_phases(self, monkeypatch):
        with serve(monkeypatch, workers=1, test_ops=True) as (handle, client):
            ctx = obs_context.new_context()
            response = client.request(
                "POST", "/v1/sleep",
                {"seconds": 5.0, "timeout_s": 0.2}, ctx=ctx,
            )
            assert response.status == 504
            assert response.payload["trace_id"] == ctx.trace_id
            assert response.payload["error"]["where"] == "worker"
            assert response.request_id

            detail = client.trace_detail(response.request_id)
            assert detail["status"] == 504
            assert detail["spans"][0]["name"] == "request.sleep"
            errors = client.debugz("errors").raise_for_status().result
            assert response.request_id in [
                r["request_id"] for r in errors["requests"]
            ]

            # A synthesis killed mid-pipeline still reports the phases
            # that finished before the alarm (retry to dodge timing luck).
            for _ in range(5):
                killed = client.request(
                    "POST", "/v1/synthesize",
                    {"nf": "snortlite", "timeout_s": 0.03},
                )
                if killed.status == 504 and killed.payload.get("phases_ms"):
                    break
            if killed.status == 504:
                assert killed.payload.get("phases_ms", {}) is not None

    def test_tracing_off_records_summaries_only(self, monkeypatch):
        with serve(monkeypatch, workers=1, tracing=False) as (handle, client):
            response = client.synthesize("monitor").raise_for_status()
            assert response.request_id.startswith("req-")
            assert "trace_id" not in response.payload
            detail = client.trace_detail(response.request_id)
            assert detail["trace_id"] == ""
            assert detail["spans"] is None
            listing = client.debugz("requests").raise_for_status().result
            assert listing["requests"][0]["n_spans"] is None

    def test_invalid_traceparent_gets_fresh_trace(self, monkeypatch):
        with serve(monkeypatch, workers=1, test_ops=True) as (handle, client):
            import http.client as hc

            conn = hc.HTTPConnection("127.0.0.1", handle.port, timeout=30)
            try:
                conn.request(
                    "POST", "/v1/sleep",
                    body=json.dumps({"seconds": 0.01}).encode(),
                    headers={
                        "Content-Type": "application/json",
                        "traceparent": "00-zzzz-bad-01",
                    },
                )
                raw = conn.getresponse()
                payload = json.loads(raw.read())
            finally:
                conn.close()
            assert payload["ok"] is True
            # Malformed header → server minted a fresh, valid trace.
            assert len(payload["trace_id"]) == 32
