"""Tests for the NFPy frontend: parsing, lowering, validation, def/use."""

from __future__ import annotations

import pytest

from repro.lang.errors import NFPyError, NFPyRecursionError
from repro.lang.ir import (
    EBool,
    ECall,
    ECmp,
    EConst,
    EName,
    SAssign,
    SDelete,
    SIf,
    SReturn,
    SWhile,
    expr_names,
    iter_block,
    stmt_defs,
    stmt_scope_names,
    stmt_uses,
)
from repro.lang.parser import parse_function, parse_program


class TestParsing:
    def test_module_split(self):
        p = parse_program("x = 1\n\ndef f(a):\n    return a\n")
        assert len(p.module_body) == 1
        assert set(p.functions) == {"f"}

    def test_entry_selection(self):
        p = parse_program("def f(a):\n    return a\n", entry="f")
        assert p.entry_function.name == "f"

    def test_missing_entry_rejected(self):
        with pytest.raises(NFPyError):
            parse_program("x = 1\n", entry="nope")

    def test_main_guard_skipped(self):
        p = parse_program(
            "def f(a):\n    return a\n\nif __name__ == '__main__':\n    f(1)\n"
        )
        assert p.module_body == []

    def test_docstrings_dropped(self):
        p = parse_program('"""mod doc"""\n\ndef f(a):\n    "fn doc"\n    return a\n')
        assert p.module_body == []
        assert len(p.functions["f"].body) == 1

    def test_sids_unique_and_dense(self):
        p = parse_program("x = 1\ny = 2\n\ndef f(a):\n    if a:\n        return 1\n    return 0\n")
        sids = [s.sid for s in p.all_stmts()]
        assert sorted(sids) == list(range(len(sids)))

    def test_line_numbers_kept(self):
        p = parse_program("x = 1\ny = 2\n")
        assert [s.line for s in p.module_body] == [1, 2]

    def test_duplicate_function_rejected(self):
        with pytest.raises(NFPyError):
            parse_program("def f(a):\n    return a\n\ndef f(b):\n    return b\n")

    def test_syntax_error_wrapped(self):
        with pytest.raises(NFPyError, match="syntax"):
            parse_program("def f(:\n")


class TestLowering:
    def test_for_becomes_while(self):
        fn = parse_function("def f(xs):\n    t = 0\n    for x in xs:\n        t += x\n    return t\n")
        kinds = [type(s).__name__ for s in fn.body]
        assert "SWhile" in kinds
        assert not any(k == "SFor" for k in kinds)

    def test_comparison_chain_expands(self):
        fn = parse_function("def f(a):\n    return 1 <= a <= 10\n")
        ret = fn.body[0]
        assert isinstance(ret, SReturn)
        assert isinstance(ret.value, EBool)
        assert all(isinstance(part, ECmp) for part in ret.value.values)

    def test_elif_nests(self):
        fn = parse_function(
            "def f(a):\n    if a == 1:\n        return 1\n    elif a == 2:\n        return 2\n    else:\n        return 3\n"
        )
        top = fn.body[0]
        assert isinstance(top, SIf)
        assert isinstance(top.orelse[0], SIf)

    def test_method_call_normalised(self):
        fn = parse_function("def f(xs):\n    xs.append(1)\n")
        call = fn.body[0].value
        assert isinstance(call, ECall) and call.method and call.func == "append"
        assert call.args[0] == EName("xs")

    def test_del_statement(self):
        fn = parse_function("def f(d, k):\n    del d[k]\n")
        assert isinstance(fn.body[0], SDelete)

    def test_global_collected(self):
        fn = parse_function("def f(a):\n    global x, y\n    x = a\n")
        assert fn.global_names == {"x", "y"}

    def test_augmented_assign(self):
        fn = parse_function("def f(a):\n    a += 2\n    return a\n")
        assign = fn.body[0]
        assert isinstance(assign, SAssign) and assign.aug == "+"


class TestRejections:
    @pytest.mark.parametrize(
        "source",
        [
            "def f(a):\n    [x for x in a]\n",          # comprehension
            "def f(a):\n    with a:\n        pass\n",   # with
            "def f(a):\n    try:\n        pass\n    except Exception:\n        pass\n",
            "class C:\n    pass\n",
            "def f(a, *args):\n    return a\n",
            "def f(a=1):\n    return a\n",
            "def f(a):\n    return lambda: a\n",
            "def f(a):\n    assert a\n",
            "def f(a):\n    return a[1:2]\n",           # slicing
            "def f(a):\n    del a\n",                   # bare del
            "async def f(a):\n    return a\n",
            "def f(a):\n    return f(a - 1)\n",         # recursion
        ],
    )
    def test_rejected(self, source):
        with pytest.raises(NFPyError):
            parse_program(source)

    def test_mutual_recursion_rejected(self):
        src = "def f(a):\n    return g(a)\n\ndef g(a):\n    return f(a)\n"
        with pytest.raises(NFPyRecursionError):
            parse_program(src)

    def test_imports_tolerated(self):
        p = parse_program("import os\nfrom sys import path\nx = 1\n")
        assert len(p.module_body) == 1


class TestDefUse:
    def _stmt(self, body: str):
        fn = parse_function(f"def f(a, b, d):\n    {body}\n")
        return fn.body[0]

    def test_simple_assign(self):
        s = self._stmt("x = a + b")
        assert stmt_defs(s) == {"x"}
        assert stmt_uses(s) == {"a", "b"}

    def test_tuple_assign(self):
        s = self._stmt("x, y = a, b")
        assert stmt_defs(s) == {"x", "y"}

    def test_subscript_store_is_weak(self):
        s = self._stmt("d[a] = b")
        assert stmt_defs(s) == {"d"}
        assert stmt_uses(s) == {"d", "a", "b"}
        assert stmt_scope_names(s) == set()  # does not bind `d`

    def test_attr_store_is_weak(self):
        s = self._stmt("a.ip_src = b")
        assert stmt_defs(s) == {"a"}
        assert "a" in stmt_uses(s)

    def test_aug_assign_uses_target(self):
        s = self._stmt("a += b")
        assert stmt_uses(s) == {"a", "b"}
        assert stmt_scope_names(s) == {"a"}  # x += 1 binds x in Python

    def test_method_mutation_defs_receiver(self):
        s = self._stmt("d.append(a)")
        assert stmt_defs(s) == {"d"}

    def test_if_uses_condition_only(self):
        fn = parse_function("def f(a, b):\n    if a > 1:\n        x = b\n")
        s = fn.body[0]
        assert stmt_uses(s) == {"a"}
        assert stmt_defs(s) == set()

    def test_delete_def_use(self):
        s = self._stmt("del d[a]")
        assert stmt_defs(s) == {"d"}
        assert stmt_uses(s) == {"d", "a"}

    def test_expr_names_nested(self):
        fn = parse_function("def f(a, b, c):\n    return (a + b) * c[a]\n")
        assert expr_names(fn.body[0].value) == {"a", "b", "c"}
