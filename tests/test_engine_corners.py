"""Corner-case tests for the symbolic engine's expression handling."""

from __future__ import annotations

import pytest

from repro.lang.parser import parse_program
from repro.pdg.flatten import flatten_program
from repro.symbolic.engine import EngineConfig, SymbolicEngine
from repro.symbolic.expr import SVar, SymDict, SymPacket, eval_sym, leaf_key
from repro.symbolic.solver import Solver


def explore(source: str, extra_env=None, config=None):
    from repro.interp import Interpreter

    flat = flatten_program(parse_program(source, entry="cb"))
    module_part = [s for s in flat.block if s.sid in flat.module_sids]
    env = dict(Interpreter().run_block(list(module_part)).globals)
    env["pkt"] = SymPacket.fresh()
    env.update(extra_env or {})
    engine = SymbolicEngine(config)
    block = [s for s in flat.block if s.sid not in flat.module_sids]
    return engine.explore(block, env), engine


def concretize(path, extra=None):
    """A concrete witness for a path's condition."""
    model = Solver(seed=2, max_samples=400).model(path.constraints + (extra or []))
    assert model is not None
    return model


class TestExpressions:
    def test_conditional_expression_symbolic(self):
        paths, _ = explore(
            "def cb(pkt):\n"
            "    x = 1 if pkt.ttl > 5 else 2\n"
            "    pkt.length = x\n"
            "    send_packet(pkt)\n"
        )
        assert len(paths) == 1  # no fork: cond stays an expression
        length = paths[0].sent[0][0]["length"]
        assert eval_sym(length, {"v:pkt.ttl": 10}) == 1
        assert eval_sym(length, {"v:pkt.ttl": 1}) == 2

    def test_tuple_concatenation(self):
        paths, _ = explore(
            "def cb(pkt):\n"
            "    t = (pkt.ip_src,) + (pkt.ip_dst,)\n"
            "    if t == (pkt.ip_src, pkt.ip_dst):\n"
            "        send_packet(pkt)\n"
        )
        assert len(paths) == 1
        assert not paths[0].drops  # tautology folds to True

    def test_unary_minus_and_invert(self):
        paths, _ = explore(
            "def cb(pkt):\n"
            "    a = -5\n"
            "    b = ~a\n"
            "    pkt.length = b\n"
            "    send_packet(pkt)\n"
        )
        assert paths[0].sent[0][0]["length"] == 4

    def test_sum_over_concrete_list(self):
        paths, _ = explore(
            "XS = [1, 2, 3]\n"
            "def cb(pkt):\n"
            "    pkt.length = sum(XS)\n"
            "    send_packet(pkt)\n"
        )
        assert paths[0].sent[0][0]["length"] == 6

    def test_string_comparison(self):
        paths, _ = explore(
            "MODE = 'rr'\n"
            "def cb(pkt):\n"
            "    if MODE == 'rr':\n"
            "        send_packet(pkt)\n"
        )
        assert len(paths) == 1 and not paths[0].drops

    def test_chained_comparison(self):
        paths, _ = explore(
            "def cb(pkt):\n"
            "    if 10 <= pkt.ttl <= 20:\n"
            "        send_packet(pkt)\n"
        )
        send = next(p for p in paths if not p.drops)
        witness = concretize(send)
        assert 10 <= witness[leaf_key(SVar("pkt.ttl", 0, 255))] <= 20

    def test_membership_in_concrete_list(self):
        paths, _ = explore(
            "PORTS = [22, 23, 25]\n"
            "def cb(pkt):\n"
            "    if pkt.dport in PORTS:\n"
            "        return\n"
            "    send_packet(pkt)\n"
        )
        drop = next(p for p in paths if p.drops)
        witness = concretize(drop)
        assert witness[leaf_key(SVar("pkt.dport", 0, 65535))] in (22, 23, 25)

    def test_membership_in_concrete_dict_keys(self):
        paths, _ = explore(
            "BLOCK = {7: 1, 9: 1}\n"
            "def cb(pkt):\n"
            "    if pkt.in_port in BLOCK:\n"
            "        return\n"
            "    send_packet(pkt)\n"
        )
        drop = next(p for p in paths if p.drops)
        witness = concretize(drop)
        assert witness[leaf_key(SVar("pkt.in_port", 0, 255))] in (7, 9)

    def test_bitwise_mask_witnesses(self):
        paths, _ = explore(
            "def cb(pkt):\n"
            "    if (pkt.ip_src & 4278190080) == 167772160:\n"
            "        send_packet(pkt)\n"
        )
        send = next(p for p in paths if not p.drops)
        witness = concretize(send)
        assert witness[leaf_key(SVar("pkt.ip_src", 0, 2**32 - 1))] >> 24 == 10


class TestErrorsAndEdges:
    def test_division_by_zero_kills_path_only(self):
        config = EngineConfig(keep_pruned=True)
        paths, engine = explore(
            "def cb(pkt):\n"
            "    if pkt.ttl == 0:\n"
            "        x = 1 // 0\n"
            "    send_packet(pkt)\n",
            config=config,
        )
        assert engine.stats.paths_error == 1
        assert engine.stats.paths_done == 1  # the healthy arm survives

    def test_out_of_range_index_kills_path(self):
        config = EngineConfig(keep_pruned=True)
        paths, engine = explore(
            "XS = [1, 2]\n"
            "def cb(pkt):\n    x = XS[5]\n",
            config=config,
        )
        assert engine.stats.paths_error == 1

    def test_concrete_dict_symbolic_key_unsupported(self):
        config = EngineConfig(keep_pruned=True)
        paths, engine = explore(
            "D = {1: 2}\n"
            "def cb(pkt):\n    x = D[pkt.ttl]\n",
            config=config,
        )
        assert engine.stats.paths_error == 1
        assert "symbolic key" in paths[0].note

    def test_send_non_packet_rejected(self):
        config = EngineConfig(keep_pruned=True)
        paths, engine = explore(
            "def cb(pkt):\n    send_packet(42)\n", config=config
        )
        assert engine.stats.paths_error == 1

    def test_aug_assign_on_dict_entry(self):
        paths, _ = explore(
            "def cb(pkt):\n"
            "    t[pkt.ip_src] = 1\n"
            "    t[pkt.ip_src] += 2\n"
            "    if t[pkt.ip_src] == 3:\n"
            "        send_packet(pkt)\n",
            extra_env={"t": SymDict("t")},
        )
        assert len(paths) == 1 and not paths[0].drops

    def test_branches_list_matches_forks(self):
        paths, engine = explore(
            "def cb(pkt):\n"
            "    if pkt.ttl > 1:\n"
            "        if pkt.ttl > 2:\n"
            "            send_packet(pkt)\n"
        )
        deepest = max(paths, key=lambda p: len(p.branches))
        assert len(deepest.branches) == 2
