"""Tests for the workload generator."""

from __future__ import annotations

from repro.net.generator import TrafficGenerator, WorkloadSpec
from repro.net.packet import FIELD_DOMAINS, PROTO_TCP, TCP_SYN


class TestTrafficGenerator:
    def test_deterministic_for_seed(self):
        a = list(TrafficGenerator(WorkloadSpec(n_packets=50, seed=1)).packets())
        b = list(TrafficGenerator(WorkloadSpec(n_packets=50, seed=1)).packets())
        assert a == b

    def test_different_seeds_differ(self):
        a = list(TrafficGenerator(WorkloadSpec(n_packets=50, seed=1)).packets())
        b = list(TrafficGenerator(WorkloadSpec(n_packets=50, seed=2)).packets())
        assert a != b

    def test_packet_count(self):
        pkts = list(TrafficGenerator(WorkloadSpec(n_packets=137, seed=3)).packets())
        assert len(pkts) >= 137  # flows may slightly overshoot the last chunk

    def test_fields_within_domains(self):
        for pkt in TrafficGenerator(WorkloadSpec(n_packets=100, seed=4)).packets():
            for name, (lo, hi) in FIELD_DOMAINS.items():
                assert lo <= getattr(pkt, name) <= hi

    def test_interesting_values_show_up(self):
        spec = WorkloadSpec(
            n_packets=200, seed=5, bias=0.9, interesting={"dport": [8080]}
        )
        pkts = list(TrafficGenerator(spec).packets())
        assert any(p.dport == 8080 for p in pkts)

    def test_flow_packets_form_handshake(self):
        gen = TrafficGenerator(WorkloadSpec(seed=6))
        flow = gen.flow_packets(4)
        assert flow[0].tcp_flags == TCP_SYN
        assert flow[0].proto == PROTO_TCP
        # reverse direction swaps the tuple
        assert (flow[1].ip_src, flow[1].sport) == (flow[0].ip_dst, flow[0].dport)

    def test_zero_flow_fraction_yields_singletons(self):
        spec = WorkloadSpec(n_packets=20, seed=7, flow_fraction=0.0)
        assert len(list(TrafficGenerator(spec).packets())) == 20
