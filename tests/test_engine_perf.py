"""Guards for the engine cold-path stack (docs/internals.md §9).

The three cold-path layers — path subsumption, expression interning,
and frontier-parallel exploration — all claim to be behaviour-
preserving *by construction*: toggling any of them, or changing the
exploration strategy, must produce byte-identical serialized models.
These tests pin that claim corpus-wide, plus the strategy/config
validation and the explored/pruned/truncated accounting identity.
"""

from __future__ import annotations

import pytest

from repro.lang.parser import parse_program
from repro.model.serialize import model_to_json
from repro.nfactor.algorithm import NFactor, NFactorConfig
from repro.nfs import get_nf, nf_names
from repro.obs import metrics as obs_metrics
from repro.pdg.flatten import flatten_program
from repro.symbolic.engine import EngineConfig, ExploreStats, SymbolicEngine
from repro.symbolic.expr import SymPacket
from repro.symbolic.strategies import VALID_STRATEGIES, make_strategy


def _model_bytes(name: str, **engine_kwargs) -> str:
    spec = get_nf(name)
    config = NFactorConfig(
        engine=EngineConfig(**engine_kwargs), artifact_cache=False
    )
    result = NFactor(spec.source, name=name, config=config).synthesize()
    return model_to_json(result.model)


class TestConfigValidation:
    def test_bad_strategy_rejected_at_construction(self):
        with pytest.raises(ValueError) as err:
            EngineConfig(strategy="dijkstra")
        # The message teaches the fix: it names every valid strategy.
        for valid in VALID_STRATEGIES:
            assert valid in str(err.value)

    def test_make_strategy_names_valid_strategies(self):
        with pytest.raises(ValueError) as err:
            make_strategy("a-star")
        for valid in VALID_STRATEGIES:
            assert valid in str(err.value)

    def test_frontier_maps_to_lifo(self):
        from repro.symbolic.strategies import DepthFirst

        assert isinstance(make_strategy("frontier"), DepthFirst)

    def test_parallel_paths_must_be_positive(self):
        with pytest.raises(ValueError):
            EngineConfig(parallel_paths=0)


class TestCrossStrategyByteIdentity:
    """Every corpus NF: one model, whatever the exploration order."""

    @pytest.mark.parametrize("name", nf_names())
    def test_all_strategies_agree(self, name):
        reference = _model_bytes(name, strategy="dfs")
        assert _model_bytes(name, strategy="bfs") == reference
        for seed in (0, 1, 2):
            assert (
                _model_bytes(name, strategy="random", strategy_seed=seed)
                == reference
            )
        assert (
            _model_bytes(name, strategy="frontier", parallel_paths=2)
            == reference
        )


class TestToggleByteIdentity:
    """Each cold-path layer off (and all off): identical bytes."""

    @pytest.mark.parametrize("name", ["firewall", "nat", "proxycache"])
    def test_layers_are_behaviour_preserving(self, name):
        reference = _model_bytes(name)
        assert _model_bytes(name, subsumption=False) == reference
        assert _model_bytes(name, intern_exprs=False) == reference
        assert _model_bytes(name, witness_shortcut=False) == reference
        assert (
            _model_bytes(
                name,
                subsumption=False,
                intern_exprs=False,
                witness_shortcut=False,
            )
            == reference
        )


# A compact program whose branch structure produces duplicate states:
# both arms of the first branch leave an identical environment, so the
# second/third branches are explored once and grafted once.
DUPLICATING_SOURCE = (
    "def cb(pkt):\n"
    "    if pkt.ttl > 64:\n"
    "        x = 1\n"
    "    else:\n"
    "        x = 1\n"
    "    if pkt.dport == 80:\n"
    "        if pkt.sport == 53:\n"
    "            send_packet(pkt)\n"
)


def _explore(**engine_kwargs):
    flat = flatten_program(parse_program(DUPLICATING_SOURCE, entry="cb"))
    engine = SymbolicEngine(EngineConfig(**engine_kwargs))
    registry = obs_metrics.MetricsRegistry()
    previous = obs_metrics.install(registry)
    try:
        paths = engine.explore(list(flat.block), {"pkt": SymPacket.fresh()})
    finally:
        obs_metrics.uninstall(previous)
    return paths, engine.stats, registry.snapshot()["counters"]


class TestAccounting:
    def test_states_total_identity(self):
        for subsumption in (False, True):
            _, stats, _ = _explore(subsumption=subsumption)
            assert stats.states_total == (
                stats.states_explored
                + stats.pruned_subsumed
                + stats.paths_truncated
            )

    def test_subsumption_prunes_duplicate_states(self):
        _, on, _ = _explore(subsumption=True)
        _, off, _ = _explore(subsumption=False)
        assert on.pruned_subsumed > 0
        assert off.pruned_subsumed == 0
        assert on.states_explored < off.states_explored
        # Both runs finish the same path set.
        assert on.paths_done == off.paths_done

    def test_popped_counter_matches_work_done(self):
        _, off, counters_off = _explore(subsumption=False)
        assert counters_off["se.states_popped"] == off.states_total
        _, on, counters_on = _explore(subsumption=True)
        # A graft emits leaves without popping their states.
        assert counters_on["se.states_popped"] <= on.states_total
        assert counters_on["se.pruned_subsumed"] == on.pruned_subsumed

    def test_states_total_is_derived(self):
        stats = ExploreStats(
            states_explored=5, pruned_subsumed=2, paths_truncated=1
        )
        assert stats.states_total == 8
