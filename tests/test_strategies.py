"""Tests for symbolic exploration strategies."""

from __future__ import annotations

import pytest

from repro.lang.parser import parse_program
from repro.pdg.flatten import flatten_program
from repro.symbolic.engine import EngineConfig, SymbolicEngine
from repro.symbolic.expr import SymPacket, canon
from repro.symbolic.strategies import (
    BreadthFirst,
    DepthFirst,
    RandomOrder,
    make_strategy,
)

SOURCE = (
    "def cb(pkt):\n"
    "    if pkt.dport == 80:\n"
    "        if pkt.ttl > 5:\n"
    "            if pkt.sport == 53:\n"
    "                send_packet(pkt)\n"
    "    else:\n"
    "        send_packet(pkt)\n"
)


def path_signatures(strategy: str, seed: int = 0, max_paths: int = 4096):
    flat = flatten_program(parse_program(SOURCE, entry="cb"))
    engine = SymbolicEngine(
        EngineConfig(strategy=strategy, strategy_seed=seed, max_paths=max_paths)
    )
    paths = engine.explore(list(flat.block), {"pkt": SymPacket.fresh()})
    return [frozenset(canon(c) for c in p.constraints) for p in paths]


class TestSchedulingDiscipline:
    def test_dfs_is_lifo(self):
        s = DepthFirst()
        from repro.symbolic.state import SymState

        a, b = SymState(pc=1, env={}), SymState(pc=2, env={})
        s.push(a)
        s.push(b)
        assert s.pop() is b and s.pop() is a

    def test_bfs_is_fifo(self):
        s = BreadthFirst()
        from repro.symbolic.state import SymState

        a, b = SymState(pc=1, env={}), SymState(pc=2, env={})
        s.push(a)
        s.push(b)
        assert s.pop() is a and s.pop() is b

    def test_random_is_seeded(self):
        from repro.symbolic.state import SymState

        def drain(seed):
            s = RandomOrder(seed)
            states = [SymState(pc=i, env={}) for i in range(8)]
            for st in states:
                s.push(st)
            return [s.pop().pc for _ in range(8)]

        assert drain(3) == drain(3)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_strategy("dijkstra")


class TestOrderIndependence:
    def test_complete_exploration_is_order_independent(self):
        dfs = set(path_signatures("dfs"))
        bfs = set(path_signatures("bfs"))
        rnd = set(path_signatures("random", seed=9))
        assert dfs == bfs == rnd

    def test_bfs_prefers_short_paths_under_budget(self):
        """With a 2-path budget, BFS keeps the shallow behaviours."""
        bfs = path_signatures("bfs", max_paths=2)
        dfs = path_signatures("dfs", max_paths=2)
        assert len(bfs) == len(dfs) == 2
        shortest = min(len(sig) for sig in set(path_signatures("dfs")))
        assert min(len(s) for s in bfs) == shortest
