"""Tests for repro.obs: tracing, metrics, reporting, and the guarantee
that observing a synthesis never changes its result."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.model.serialize import model_to_json
from repro.nfactor.algorithm import NFactor
from repro.nfs import get_nf
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.report import collect_profile, render_profile
from repro.obs.trace import NULL_SPAN, JsonlWriter, Tracer


class TestSpans:
    def test_nesting_and_ordering(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("mid") as mid:
                with tracer.span("inner") as inner:
                    pass
            with tracer.span("mid2") as mid2:
                pass
        assert outer.parent_id is None
        assert mid.parent_id == outer.span_id
        assert inner.parent_id == mid.span_id
        assert mid2.parent_id == outer.span_id
        # completion order: innermost first
        assert [s.name for s in tracer.spans] == ["inner", "mid", "mid2", "outer"]
        # intervals nest
        assert outer.start <= mid.start <= inner.start
        assert inner.end <= mid.end <= outer.end
        assert all(s.duration >= 0.0 for s in tracer.spans)

    def test_sibling_spans_after_exit(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b") as b:
            pass
        assert b.parent_id is None

    def test_attrs_merge(self):
        tracer = Tracer()
        with tracer.span("s", x=1) as s:
            s.set(y=2)
        assert s.attrs == {"x": 1, "y": 2}

    def test_disabled_tracer_returns_null_span(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything") is NULL_SPAN
        with tracer.span("x") as s:
            s.set(a=1)  # no-op, no error
        assert tracer.spans == []

    def test_ambient_span_without_tracer_is_null(self):
        assert obs.trace.active() is None
        assert obs.trace.span("x") is NULL_SPAN

    def test_thread_local_stacks(self):
        tracer = Tracer()
        seen = {}

        def worker(name):
            with tracer.span(name) as s:
                seen[name] = s.parent_id

        with tracer.span("main-root"):
            t = threading.Thread(target=worker, args=("t1",))
            t.start()
            t.join()
        # the other thread's span must NOT be parented under main's root
        assert seen["t1"] is None


class TestJsonl:
    def _parse(self, path):
        with open(path, encoding="utf-8") as fh:
            return [json.loads(line) for line in fh]

    def test_live_sink_round_trip(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        writer = JsonlWriter(out)
        tracer = Tracer(sink=writer)
        with tracer.span("root", nf="x"):
            with tracer.span("child"):
                pass
        writer.close()

        events = self._parse(out)
        assert len(events) == 4  # B/E per span
        by_kind = {}
        for e in events:
            by_kind.setdefault(e["ev"], []).append(e)
        assert {e["name"] for e in by_kind["B"]} == {"root", "child"}
        for end in by_kind["E"]:
            assert "dur" in end and end["dur"] >= 0.0
        child_end = next(e for e in by_kind["E"] if e["name"] == "child")
        root_begin = next(e for e in by_kind["B"] if e["name"] == "root")
        assert child_end["parent"] == root_begin["span"]

    def test_dump_matches_live(self, tmp_path):
        live, dumped = tmp_path / "live.jsonl", tmp_path / "dump.jsonl"
        writer = JsonlWriter(live)
        tracer = Tracer(sink=writer)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        writer.close()
        with open(dumped, "w") as fh:
            n = tracer.dump_jsonl(fh)
        assert n == 4
        key = lambda e: (e["span"], e["ev"])
        assert sorted(self._parse(live), key=key) == sorted(
            self._parse(dumped), key=key
        )


class TestMetrics:
    def test_counter_inc_and_monotonicity(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_counter_thread_safety(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        n_threads, n_incs = 8, 2000

        def worker():
            for _ in range(n_incs):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n_threads * n_incs

    def test_gauge(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12

    def test_histogram_bucket_edges(self):
        h = Histogram("h", buckets=[1, 10, 100])
        # le semantics: a value equal to a bound lands IN that bucket
        for v in (0, 1, 2, 10, 11, 100, 101):
            h.observe(v)
        buckets = dict(h.bucket_counts())  # cumulative {le: count}
        assert buckets[1] == 2  # 0, 1
        assert buckets[10] == 4  # + 2, 10
        assert buckets[100] == 6  # + 11, 100
        assert buckets[float("inf")] == 7  # + 101
        assert h.count == 7
        assert h.sum == 225
        assert h.as_dict()["min"] == 0 and h.as_dict()["max"] == 101

    def test_histogram_quantile(self):
        h = Histogram("h", buckets=[1, 10, 100])
        for v in [1] * 9 + [100]:
            h.observe(v)
        assert h.quantile(0.5) == 1
        assert h.quantile(1.0) == 100

    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_disabled_registry_noops(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("c").inc(100)
        reg.gauge("g").set(5)
        reg.histogram("h").observe(1.0)
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(7)
        reg.histogram("h", buckets=[1, 2]).observe(1)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 7}
        assert snap["histograms"]["h"]["count"] == 1
        json.dumps(snap)  # must be JSON-serialisable

    def test_ambient_default_disabled(self):
        assert not obs.metrics.active().enabled
        obs.metrics.counter("nope").inc()  # silently dropped
        assert obs.metrics.active().snapshot()["counters"] == {}


class TestObserved:
    def test_install_and_restore(self):
        assert obs.trace.active() is None
        with obs.observed() as (tracer, registry):
            assert obs.trace.active() is tracer
            assert obs.metrics.active() is registry
            with obs.trace.span("x"):
                obs.metrics.counter("c").inc()
        assert obs.trace.active() is None
        assert not obs.metrics.active().enabled
        assert [s.name for s in tracer.spans] == ["x"]
        assert registry.snapshot()["counters"] == {"c": 1}

    def test_nested_observation_restores_outer(self):
        with obs.observed() as (outer, _):
            with obs.observed() as (inner, _):
                assert obs.trace.active() is inner
            assert obs.trace.active() is outer


class TestReport:
    def test_profile_phases_and_render(self):
        with obs.observed() as (tracer, registry):
            with obs.trace.phase("alpha"):
                with obs.trace.span("inner.work"):
                    pass
            with obs.trace.phase("beta"):
                pass
            registry.counter("k").inc(3)
        profile = collect_profile(tracer, registry)
        names = [p["name"] for p in profile["phases"]]
        assert names == ["alpha", "beta"]
        alpha = profile["phases"][0]
        assert alpha["self_s"] <= alpha["total_s"]
        text = render_profile(profile)
        assert "alpha" in text and "beta" in text and "inner.work" in text
        assert "k" in text

    def test_phase_accumulates_timings_without_tracer(self):
        timings = {}
        with obs.trace.phase("p", timings):
            pass
        with obs.trace.phase("p", timings):
            pass
        assert timings["p"] >= 0.0
        profile = collect_profile(phase_timings=timings)
        assert profile["phases"][0]["name"] == "p"


class TestSynthesisGuard:
    """Observation must never change what the pipeline produces."""

    @pytest.mark.parametrize("name", ["monitor", "nat"])
    def test_model_identical_enabled_vs_disabled(self, name):
        spec = get_nf(name)
        plain = NFactor(spec.source, name=name).synthesize()
        with obs.observed() as (tracer, registry):
            observed = NFactor(spec.source, name=name).synthesize()

        assert model_to_json(plain.model) == model_to_json(observed.model)
        assert plain.pkt_slice == observed.pkt_slice
        assert plain.state_slice == observed.state_slice
        assert plain.union_slice == observed.union_slice
        assert plain.stats.n_paths == observed.stats.n_paths
        assert plain.stats.solver_checks == observed.stats.solver_checks

        # the observed run carried the extras...
        assert observed.stats.metrics["counters"]["model.entries"] >= 1
        assert any(s.name == "se.explore" for s in tracer.spans)
        # ...and the plain run still got phase timings for free
        for phase in ("flatten", "pdg", "slice", "classify", "symbolic", "refactor"):
            assert phase in plain.stats.phase_timings

    def test_engine_spans_nest_under_symbolic_phase(self):
        spec = get_nf("monitor")
        with obs.observed() as (tracer, _):
            NFactor(spec.source, name="monitor").synthesize()
        by_id = {s.span_id: s for s in tracer.spans}
        engine_spans = [s for s in tracer.spans if s.name == "se.explore"]
        assert engine_spans
        for s in engine_spans:
            assert by_id[s.parent_id].name == "phase.symbolic"

    def test_solver_checks_compat_property(self):
        from repro.symbolic.solver import Solver
        from repro.symbolic.expr import SVar, mk_app

        solver = Solver()
        assert solver.checks == 0
        x = SVar("x", 0, 10)
        solver.check([mk_app(">", x, 3)])
        solver.check([mk_app(">", x, 100)])
        assert solver.checks == 2
        assert solver.check_hist.count == 2
        assert solver.check_hist.sum > 0.0
