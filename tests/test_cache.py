"""The persistent artifact cache (repro.cache) and its pipeline wiring.

The load-bearing invariant under test: caching changes *when* work
happens, never *what* is computed.  Cached, uncached and cache-corrupted
runs must produce byte-identical serialized models; any damaged or stale
entry is silently a miss.

The autouse conftest fixture disables the ambient store (REPRO_CACHE=off
with a tmp REPRO_CACHE_DIR); tests here opt back in per-test via
``repro.cache.override`` (process-local) or monkeypatched env vars
(inherited by batch worker processes).
"""

from __future__ import annotations

import logging
import threading

import pytest

from repro import cache as artifact_cache
from repro.cache import keys as cache_keys
from repro.nfactor.algorithm import NFactorConfig, synthesize_model_cached
from repro.nfs import get_nf
from repro.symbolic.engine import EngineConfig
from repro.symbolic.solver import ConstraintCache, clear_global_cache


@pytest.fixture()
def store_dir(tmp_path):
    """An enabled private store for the duration of one test."""
    directory = tmp_path / "cache"
    clear_global_cache()
    with artifact_cache.override(directory=str(directory), enabled=True):
        yield directory
    clear_global_cache()


def _synthesize(name="nat", source=None, max_paths=16384):
    spec = get_nf(name)
    config = NFactorConfig(engine=EngineConfig(max_paths=max_paths))
    return synthesize_model_cached(
        source if source is not None else spec.source,
        name=name,
        entry=spec.entry,
        config=config,
    )


# -- keys ---------------------------------------------------------------------


def test_keys_deterministic_and_kind_separated():
    material = ("source text", ("a", 1), frozenset({3, 1, 2}))
    assert artifact_cache.artifact_key("model", material) == \
        artifact_cache.artifact_key("model", material)
    assert artifact_cache.artifact_key("model", material) != \
        artifact_cache.artifact_key("prep", material)
    assert artifact_cache.artifact_key("model", material) != \
        artifact_cache.artifact_key("model", material + ("x",))


def test_fingerprint_distinguishes_types():
    # 1 vs 1.0 vs True vs "1" must not collide.
    prints = {artifact_cache.stable_fingerprint(v) for v in (1, 1.0, True, "1", b"1")}
    assert len(prints) == 5


# -- the store itself ---------------------------------------------------------


def test_store_roundtrip_and_mutation_isolation(store_dir):
    store = artifact_cache.get_store()
    key = artifact_cache.artifact_key("demo", ("payload",))
    store.put_object("demo", key, {"xs": [1, 2, 3]})
    first = store.get_object("demo", key)
    first["xs"].append(99)  # caller-side mutation must not poison the cache
    second = store.get_object("demo", key)
    assert second == {"xs": [1, 2, 3]}


def test_disabled_store_is_inert(tmp_path):
    with artifact_cache.override(directory=str(tmp_path / "c"), enabled=False):
        store = artifact_cache.get_store()
        key = artifact_cache.artifact_key("demo", ("payload",))
        store.put_object("demo", key, "value")
        assert store.get_object("demo", key) is None
        assert not (tmp_path / "c").exists()


# -- invalidation: the three ways an entry must go stale ----------------------


def test_source_edit_is_a_miss(store_dir):
    cold = _synthesize()
    assert not cold.cached
    assert _synthesize().cached  # unchanged source: model-tier hit
    edited = get_nf("nat").source.replace("EXT_IP = ", "EXT_IP = 1 + ")
    assert not _synthesize(source=edited).cached


def test_comment_outside_units_is_a_hit(store_dir):
    # Function-level keys (§15): a trailing comment touches no source
    # unit the target reads, so the same key derives — pure hit.
    cold = _synthesize()
    assert not cold.cached
    commented = get_nf("nat").source + "\n# a trailing comment\n"
    assert _synthesize(source=commented).cached


def test_config_change_is_a_miss(store_dir):
    _synthesize(max_paths=16384)
    assert _synthesize(max_paths=16384).cached
    assert not _synthesize(max_paths=8192).cached


def test_schema_version_bump_is_a_miss(store_dir, monkeypatch):
    cold = _synthesize()
    assert _synthesize().cached
    monkeypatch.setattr(cache_keys, "SCHEMA_VERSION", cache_keys.SCHEMA_VERSION + 1)
    bumped = _synthesize()
    assert not bumped.cached
    assert bumped.model_json == cold.model_json


# -- corruption: damaged entries degrade to misses, never wrong models --------


def _model_files(store_dir):
    return sorted((store_dir / "objects").rglob("model-*"))


def test_corrupt_entry_is_a_logged_miss(store_dir, caplog):
    cold = _synthesize()
    store = artifact_cache.get_store()
    [path] = _model_files(store_dir)
    raw = bytearray(path.read_bytes())
    raw[-1] ^= 0xFF  # flip a payload byte: checksum must catch it
    path.write_bytes(bytes(raw))
    store.drop_memory()

    with caplog.at_level(logging.WARNING, logger="repro.cache"):
        redone = _synthesize()
    assert not redone.cached
    assert redone.model_json == cold.model_json
    assert any("checksum" in rec.message for rec in caplog.records)
    # The recompute rewrote the entry; the next run hits again.
    store.drop_memory()
    assert _synthesize().cached


def test_truncated_entry_is_a_logged_miss(store_dir, caplog):
    cold = _synthesize()
    store = artifact_cache.get_store()
    [path] = _model_files(store_dir)
    path.write_bytes(path.read_bytes()[:3])
    store.drop_memory()

    with caplog.at_level(logging.WARNING, logger="repro.cache"):
        redone = _synthesize()
    assert not redone.cached
    assert redone.model_json == cold.model_json
    assert any("truncated" in rec.message for rec in caplog.records)


def test_corrupt_solver_blob_is_a_logged_miss(store_dir, caplog):
    cold = _synthesize()
    blob = store_dir / f"solver-constraints-v{artifact_cache.SCHEMA_VERSION}.blob"
    assert blob.exists()
    blob.write_bytes(b"garbage")
    clear_global_cache()
    artifact_cache.get_store().drop_memory()

    with caplog.at_level(logging.WARNING, logger="repro.cache"):
        redone = _synthesize(max_paths=8192)  # different key: solver must rerun
    assert redone.model_json is not None
    assert cold.model_json is not None


# -- determinism: cached == uncached, byte for byte ---------------------------


def test_cold_warm_disabled_byte_identity(store_dir):
    cold = _synthesize("firewall")
    artifact_cache.get_store().drop_memory()
    clear_global_cache()
    warm = _synthesize("firewall")
    with artifact_cache.override(enabled=False):
        clear_global_cache()
        plain = _synthesize("firewall")
    assert not cold.cached and warm.cached and not plain.cached
    assert cold.model_json == warm.model_json == plain.model_json


# -- concurrency --------------------------------------------------------------


def test_concurrent_workers_share_one_store(tmp_path, monkeypatch):
    from repro.parallel import synthesize_many

    directory = tmp_path / "shared-cache"
    monkeypatch.setenv("REPRO_CACHE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(directory))
    artifact_cache.configure()  # drop overrides; workers inherit the env

    names = ["nat", "firewall", "loadbalancer"]
    cold = synthesize_many(names, jobs=2, model_only=True)
    warm = synthesize_many(names, jobs=2, model_only=True)
    assert all(o.ok for o in cold + warm)
    assert [o.model_json for o in cold] == [o.model_json for o in warm]
    assert all(o.model_cached for o in warm)
    # The store is consistent: one model entry per NF, all readable.
    store = artifact_cache.get_store()
    stats = store.disk_stats()
    assert stats["kinds"]["model"]["count"] == len(names)
    assert not list(directory.rglob(".tmp-*"))


def test_constraint_cache_reads_are_locked():
    cache = ConstraintCache(maxsize=128)
    stop = threading.Event()
    errors = []

    def writer():
        i = 0
        while not stop.is_set():
            cache.put(("k", i % 200), "sat", {"x": i})
            cache.get(("k", (i * 7) % 200))
            i += 1

    def reader():
        while not stop.is_set():
            try:
                assert 0 <= len(cache) <= 128
                assert 0.0 <= cache.hit_rate <= 1.0
                hits, misses, entries = cache.stats()
                assert hits >= 0 and misses >= 0 and 0 <= entries <= 128
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
                stop.set()

    threads = [threading.Thread(target=writer) for _ in range(2)] + [
        threading.Thread(target=reader) for _ in range(2)
    ]
    for t in threads:
        t.start()
    stop.wait(timeout=0.5)
    stop.set()
    for t in threads:
        t.join()
    assert not errors


def test_solver_cache_persists_across_restart(store_dir):
    first = ConstraintCache(persistent=True)
    first.put(("a", 1), "sat", {"x": 7})
    first.put(("b", 2), "unsat", None)
    first.flush()

    fresh = ConstraintCache(persistent=True)  # simulated new process
    assert fresh.get(("a", 1)) == ("sat", {"x": 7})
    assert fresh.get(("b", 2)) == ("unsat", None)
    hits, misses, entries = fresh.stats()
    assert hits == 2 and entries >= 2


# -- knobs and CLI ------------------------------------------------------------


def test_env_knobs(monkeypatch, tmp_path):
    artifact_cache.configure()  # env-driven for this test
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envdir"))
    monkeypatch.setenv("REPRO_CACHE", "off")
    assert not artifact_cache.is_enabled()
    assert artifact_cache.store_token() is None
    monkeypatch.setenv("REPRO_CACHE", "1")
    assert artifact_cache.is_enabled()
    assert artifact_cache.store_token() == str(tmp_path / "envdir")
    assert artifact_cache.get_store().directory == tmp_path / "envdir"


def test_cli_cache_subcommand(store_dir, capsys):
    import json

    from repro.cli import main

    assert main(["synthesize", "nat"]) == 0
    capsys.readouterr()

    assert main(["cache", "path"]) == 0
    assert capsys.readouterr().out.strip().endswith(str(store_dir))

    assert main(["cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert "model" in out and str(store_dir) in out

    assert main(["cache", "stats", "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["kinds"]["model"]["count"] == 1

    assert main(["cache", "clear"]) == 0
    capsys.readouterr()
    assert main(["cache", "stats", "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["kinds"] == {} and stats["total_bytes"] == 0


def test_cli_no_cache_flag(store_dir, capsys):
    from repro.cli import main

    assert main(["--no-cache", "synthesize", "nat", "--stats"]) == 0
    out = capsys.readouterr().out
    assert "served from artifact cache" not in out
    stats = artifact_cache.get_store().disk_stats()
    assert stats["kinds"] == {}  # nothing was written


# -- unwritable disk tier degrades to memory-only -----------------------------


def test_unwritable_dir_degrades_to_memory_only(tmp_path, caplog):
    from repro.cache.store import ArtifactStore

    # Pointing the store at a *file* makes every mkdir/rename fail with
    # OSError regardless of uid (chmod-based read-only is bypassed by
    # root, which CI containers run as).
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("occupied")
    store = ArtifactStore(str(blocker))
    with caplog.at_level(logging.WARNING, logger="repro.cache"):
        for i in range(4):
            store.put_object("model", f"{i:040x}", {"i": i})
    warnings = [r for r in caplog.records if "unwritable" in r.message]
    assert len(warnings) == 1  # one warning, not one per artifact
    assert store.counters["disk.errors"] == 4
    # The memory tier still serves.
    for i in range(4):
        assert store.get_object("model", f"{i:040x}") == {"i": i}
    assert store.disk_stats()["disk_write_disabled"] is True


def test_disk_errors_reach_metrics_registry(tmp_path):
    from repro import obs
    from repro.cache.store import ArtifactStore

    blocker = tmp_path / "not-a-dir"
    blocker.write_text("occupied")
    store = ArtifactStore(str(blocker))
    with obs.observed() as (_tracer, registry):
        store.put_object("model", "0" * 40, {"x": 1})
        store.put_object("model", "1" * 40, {"x": 2})
    assert registry.snapshot()["counters"]["cache.disk.errors"] == 2


def test_writable_dir_never_sets_degrade_flag(store_dir):
    store = artifact_cache.get_store()
    store.put_object("model", "2" * 40, {"ok": True})
    assert "disk.errors" not in store.counters
    assert store.disk_stats()["disk_write_disabled"] is False
