"""Tests for static and dynamic slicing."""

from __future__ import annotations

import pytest

from repro.interp import Env, Interpreter
from repro.lang.ir import ECall, SExpr, iter_block
from repro.lang.parser import parse_program
from repro.net.packet import Packet
from repro.nfactor.refactor import executable_slice
from repro.pdg.flatten import flatten_program
from repro.pdg.pdg import build_pdg
from repro.slicing.criteria import SliceCriterion
from repro.slicing.dynamic import dynamic_slice
from repro.slicing.static import StaticSlicer, backward_slice, forward_slice


def setup(source: str, entry: str = "cb"):
    program = parse_program(source, entry=entry)
    flat = flatten_program(program)
    pdg = build_pdg(flat.block, flat.entry_vars())
    sends = [
        s
        for s in iter_block(flat.block)
        if isinstance(s, SExpr)
        and isinstance(s.value, ECall)
        and s.value.func == "send_packet"
    ]
    return program, flat, pdg, sends


WEISER_EXAMPLE = (
    "def cb(pkt):\n"
    "    total = 0\n"       # in slice of total, not of count? both feed...
    "    count = 0\n"
    "    n = pkt.ttl\n"
    "    i = 1\n"
    "    while i <= n:\n"
    "        total = total + i\n"
    "        count = count + 1\n"
    "        i = i + 1\n"
    "    pkt.length = total\n"
    "    send_packet(pkt)\n"
)


class TestStaticSlicing:
    def test_irrelevant_computation_excluded(self):
        program, flat, pdg, sends = setup(WEISER_EXAMPLE)
        sl = backward_slice(pdg, SliceCriterion(sends[0].sid, None))
        lines = flat.source_lines(sl)
        assert 3 not in lines  # count = 0
        assert 8 not in lines  # count = count + 1
        assert {2, 4, 5, 6, 7, 9, 10, 11} <= lines

    def test_criterion_variable_restriction(self):
        source = (
            "def cb(pkt):\n"
            "    a = pkt.ttl\n"
            "    b = pkt.length\n"
            "    pkt.sport = a\n"
            "    pkt.dport = b\n"
            "    send_packet(pkt)\n"
        )
        program, flat, pdg, sends = setup(source)
        stmts = list(iter_block(flat.block))
        a_def, b_def, sp_store, dp_store, send = stmts
        sl = StaticSlicer(pdg).backward(SliceCriterion.at(sp_store, "a"))
        assert a_def.sid in sl
        assert b_def.sid not in sl

    def test_control_dependence_pulls_branches(self):
        source = (
            "def cb(pkt):\n"
            "    if pkt.ttl > 5:\n"
            "        send_packet(pkt)\n"
        )
        program, flat, pdg, sends = setup(source)
        sl = backward_slice(pdg, SliceCriterion(sends[0].sid, None))
        branch = list(iter_block(flat.block))[0]
        assert branch.sid in sl

    def test_unknown_criterion_raises(self):
        program, flat, pdg, _ = setup("def cb(pkt):\n    send_packet(pkt)\n")
        with pytest.raises(KeyError):
            StaticSlicer(pdg).backward(SliceCriterion(999, None))

    def test_forward_slice(self):
        source = (
            "def cb(pkt):\n"
            "    a = pkt.ttl\n"
            "    b = a + 1\n"
            "    c = 7\n"
            "    pkt.length = b\n"
            "    send_packet(pkt)\n"
        )
        program, flat, pdg, sends = setup(source)
        a_def, b_def, c_def, store, send = list(iter_block(flat.block))
        fwd = forward_slice(pdg, SliceCriterion(a_def.sid, None))
        assert b_def.sid in fwd and store.sid in fwd
        assert c_def.sid not in fwd

    def test_slice_union_many(self):
        source = (
            "def cb(pkt):\n"
            "    if pkt.dport == 1:\n"
            "        send_packet(pkt, 1)\n"
            "    else:\n"
            "        send_packet(pkt, 2)\n"
        )
        program, flat, pdg, sends = setup(source)
        assert len(sends) == 2
        union = StaticSlicer(pdg).backward_many(
            [SliceCriterion(s.sid) for s in sends]
        )
        assert {s.sid for s in sends} <= union


class TestExecutableSlice:
    def test_drop_return_preserved(self):
        """Removing the unsliced `return` must not change forwarding."""
        source = (
            "bad = {}\n"
            "def cb(pkt):\n"
            "    if pkt.ip_src in bad:\n"
            "        return\n"
            "    send_packet(pkt)\n"
        )
        program, flat, pdg, sends = setup(source)
        sl = StaticSlicer(pdg).backward(SliceCriterion(sends[0].sid, None))
        sliced_block, kept = executable_slice(flat.block, sl, pdg)
        # Run the sliced program: with ip_src in bad it must still drop.
        interp = Interpreter()
        env = Env(globals={"pkt": Packet(ip_src=7)})
        interp.run_block([s for s in sliced_block], env)
        assert len(interp.sent) == 1  # empty table: forwards

        program2, flat2, pdg2, sends2 = setup(source)
        sl2 = StaticSlicer(pdg2).backward(SliceCriterion(sends2[0].sid, None))
        sliced2, _ = executable_slice(flat2.block, sl2, pdg2)
        interp2 = Interpreter()
        env2 = Env(globals={"pkt": Packet(ip_src=7)})
        # Pre-populate the table: the packet must now be dropped.
        interp2.run_block([s for s in sliced2 if s.sid not in flat2.module_sids],
                          Env(globals={"pkt": Packet(ip_src=7), "bad": {7: 1}}))
        assert len(interp2.sent) == 0

    def test_slice_behaviour_matches_original_on_criterion(self, lb_result):
        """The executable slice forwards exactly like the original LB."""
        from repro.interp.values import deep_copy

        for dport, ip_src in [(80, 11), (80, 11), (9999, 5), (443, 1)]:
            pkt = Packet(dport=dport, ip_src=ip_src, sport=1234, ip_dst=50529027)
            # original
            ref = lb_result.make_reference()
            ref_out = ref.process_packet(pkt.copy())
            # sliced program (module init + sliced entry)
            interp = Interpreter()
            state = deep_copy(lb_result.module_env)
            state["pkt"] = pkt.copy()
            interp.run_block(list(lb_result.sliced_entry), Env(globals=state))
            assert len(interp.sent) == len(ref_out)


class TestDynamicSlicing:
    def _trace(self, source: str, pkt: Packet):
        program = parse_program(source, entry="cb")
        flat = flatten_program(program)
        interp = Interpreter(trace=True)
        env = Env(globals={flat.entry_params[0]: pkt})
        interp.run_block(flat.block, env)
        return flat, interp

    def test_dynamic_subset_of_static(self):
        flat, interp = self._trace(WEISER_EXAMPLE, Packet(ttl=3))
        pdg = build_pdg(flat.block, flat.entry_vars())
        send = [
            s for s in iter_block(flat.block)
            if isinstance(s, SExpr) and isinstance(s.value, ECall)
            and s.value.func == "send_packet"
        ][0]
        static = backward_slice(pdg, SliceCriterion(send.sid, None))
        dynamic = dynamic_slice(interp.trace, SliceCriterion(send.sid, None))
        assert dynamic <= static

    def test_untaken_branch_excluded(self):
        source = (
            "def cb(pkt):\n"
            "    x = 0\n"
            "    if pkt.ttl > 100:\n"
            "        x = 1\n"
            "    pkt.length = x\n"
            "    send_packet(pkt)\n"
        )
        flat, interp = self._trace(source, Packet(ttl=5))
        stmts = list(iter_block(flat.block))
        x0, branch, x1, store, send = stmts
        dslice = dynamic_slice(interp.trace, SliceCriterion(send.sid, None))
        assert x1.sid not in dslice
        assert x0.sid in dslice

    def test_never_executed_criterion_empty(self):
        source = (
            "def cb(pkt):\n"
            "    if pkt.ttl > 300:\n"
            "        send_packet(pkt)\n"
        )
        flat, interp = self._trace(source, Packet(ttl=5))
        send = list(iter_block(flat.block))[1]
        assert dynamic_slice(interp.trace, SliceCriterion(send.sid, None)) == set()

    def test_occurrence_selection(self):
        source = (
            "def cb(pkt):\n"
            "    i = 0\n"
            "    while i < 3:\n"
            "        i = i + 1\n"
        )
        flat, interp = self._trace(source, Packet())
        incr = list(iter_block(flat.block))[2]
        first = dynamic_slice(interp.trace, SliceCriterion(incr.sid), occurrence=0)
        last = dynamic_slice(interp.trace, SliceCriterion(incr.sid))
        assert first <= last
        with pytest.raises(IndexError):
            dynamic_slice(interp.trace, SliceCriterion(incr.sid), occurrence=99)

    def test_figure1_first_packet_slice(self, lb_result):
        """Paper Fig. 1: the dynamic slice of the LB's first-packet path
        contains the round-robin selection but not the hash branch or
        the log counters."""
        from repro.interp.values import deep_copy

        interp = Interpreter(trace=True)
        state = deep_copy(lb_result.module_env)
        state["pkt"] = Packet(dport=80, ip_src=42, sport=999, ip_dst=50529027)
        interp.run_block(lb_result.flat.block, Env(globals=state))
        sends = [
            s for s in iter_block(lb_result.flat.block)
            if isinstance(s, SExpr) and isinstance(s.value, ECall)
            and s.value.func == "send_packet"
        ]
        dslice = dynamic_slice(interp.trace, SliceCriterion(sends[0].sid, None))
        lines = lb_result.flat.source_lines(dslice)
        text = lb_result.program.source.splitlines()
        sliced_text = " ".join(text[ln - 1] for ln in lines)
        assert "servers[rr_idx]" in sliced_text          # RR selection taken
        assert "hash(si)" not in sliced_text             # hash branch not taken
        assert "pass_stat" not in sliced_text            # log update pruned
