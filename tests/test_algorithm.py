"""End-to-end tests of the NFactor pipeline (paper Algorithm 1 / Fig. 2)."""

from __future__ import annotations

import pytest

from repro.lang.ir import iter_block
from repro.nfactor.algorithm import (
    NFactor,
    NFactorConfig,
    count_source_loc,
    synthesize_model,
)
from repro.nfs import get_nf
from repro.symbolic.engine import EngineConfig


class TestPipeline:
    def test_synthesize_model_convenience(self):
        result = synthesize_model(get_nf("monitor").source, name="monitor")
        assert result.model.n_entries == 1
        assert not result.model.all_entries()[0].drops

    def test_slices_are_subsets_of_program(self, lb_result):
        all_sids = {s.sid for s in iter_block(lb_result.flat.block)}
        assert lb_result.pkt_slice <= all_sids
        assert lb_result.state_slice <= all_sids
        assert lb_result.union_slice <= all_sids

    def test_state_slice_contains_state_updates(self, lb_result):
        lines = lb_result.flat.source_lines(lb_result.state_slice)
        src = lb_result.program.source.splitlines()
        texts = [src[ln - 1].strip() for ln in lines if ln <= len(src)]
        assert any("rr_idx = (rr_idx + 1)" in t for t in texts)
        assert any("f2b_nat[cs_ftpl] = cs_btpl" in t for t in texts)

    def test_log_statements_pruned(self, lb_result):
        lines = lb_result.slice_source_lines()
        src = lb_result.program.source.splitlines()
        texts = [src[ln - 1].strip() for ln in lines if ln <= len(src)]
        assert not any("pass_stat" in t for t in texts)
        assert not any("frag_stat += 1" in t for t in texts)

    def test_stats_populated(self, lb_result):
        stats = lb_result.stats
        assert stats.source_loc > 0
        assert 0 < stats.slice_loc <= stats.source_loc
        assert stats.n_paths == stats.n_entries == 5
        assert stats.se_time_s > 0
        assert stats.slicing_time_s > 0
        assert 0 < stats.path_loc_avg <= stats.path_loc_max

    def test_paths_all_done(self, lb_result):
        assert all(p.status == "done" for p in lb_result.paths)

    def test_entry_param_exposed(self, lb_result):
        assert lb_result.pkt_param == "pkt"

    def test_normalize_report(self, lb_result):
        assert lb_result.normalize_report.shape == "callback"
        assert not lb_result.unfolded

    def test_balance_is_unfolded(self, balance_result):
        assert balance_result.unfolded

    def test_deterministic_synthesis(self):
        from repro.model.serialize import model_to_json

        spec = get_nf("nat")
        a = synthesize_model(spec.source, name="nat")
        b = synthesize_model(spec.source, name="nat")
        assert model_to_json(a.model) == model_to_json(b.model)

    def test_symbolic_config_override(self):
        spec = get_nf("loadbalancer")
        config = NFactorConfig(symbolic_configs=set())  # all config concrete
        result = NFactor(spec.source, name="lb", config=config).synthesize()
        # With mode concrete (ROUND_ROBIN) the hash branch disappears.
        assert result.stats.n_paths == 4
        assert len(result.model.tables) == 1

    def test_concrete_configs_override(self):
        spec = get_nf("loadbalancer")
        config = NFactorConfig(concrete_configs={"mode", "ROUND_ROBIN"})
        result = NFactor(spec.source, name="lb", config=config).synthesize()
        assert result.stats.n_paths == 4


class TestOriginalExploration:
    def test_original_has_more_paths_than_slice(self, lb_result):
        nf = NFactor(get_nf("loadbalancer").source, name="lb")
        original, engine = nf.explore_original()
        n_orig = sum(1 for p in original if p.status == "done")
        assert n_orig > lb_result.stats.n_paths

    def test_monitor_logging_explodes_original(self, monitor_result):
        nf = NFactor(get_nf("monitor").source, name="monitor")
        original, _ = nf.explore_original()
        assert len(original) > 3  # log branches fork; slice has 1 path


class TestCountSourceLoc:
    def test_skips_blank_and_comments(self):
        source = "x = 1\n\n# comment\ny = 2  # trailing\n"
        assert count_source_loc(source) == 2

    def test_empty(self):
        assert count_source_loc("") == 0
