"""Tests for the match/action model, FSM view, rendering and simulator."""

from __future__ import annotations

import json

import pytest

from repro.model.fsm import build_fsm
from repro.model.matchaction import (
    NFModel,
    TableEntry,
    classify_leaf,
    split_constraints,
)
from repro.model.serialize import model_to_dict, model_to_json, render_model, sym_text
from repro.model.simulator import GuardEvalError, eval_symbolic
from repro.net.packet import Packet
from repro.symbolic.expr import SApp, SDictVal, SVar, mk_app

PKT_DPORT = SVar("pkt.dport", 0, 65535)
CFG_MODE = SVar("cfg.mode", 0, 3)
ST_IDX = SVar("st.rr_idx", 0, 10)
MEMBER = SApp("member", ("nat", (SVar("pkt.ip_src", 0, 2**32 - 1),)))


class TestConstraintSplit:
    def test_leaf_classification(self):
        assert classify_leaf(PKT_DPORT) == "flow"
        assert classify_leaf(CFG_MODE) == "config"
        assert classify_leaf(ST_IDX) == "state"
        assert classify_leaf(MEMBER) == "state"
        assert classify_leaf(SDictVal("nat", "k")) == "state"

    def test_split_priorities(self):
        config, flow, state = split_constraints(
            [
                mk_app("==", CFG_MODE, 1),                # pure config
                mk_app("==", PKT_DPORT, 80),              # pure flow
                mk_app("==", PKT_DPORT, CFG_MODE),        # flow+config -> flow
                MEMBER,                                    # state
                mk_app("<", ST_IDX, 2),                   # state
            ]
        )
        assert len(config) == 1
        assert len(flow) == 2
        assert len(state) == 2


def make_entry(entry_id, config=(), flow=(), state=(), sent=(), state_stmts=()):
    return TableEntry(
        entry_id=entry_id,
        config=list(config),
        match_flow=list(flow),
        match_state=list(state),
        action_stmts=[],
        pkt_action_stmts=[],
        state_action_stmts=list(state_stmts),
        sent=list(sent),
        path_id=entry_id,
    )


class TestNFModel:
    def test_entries_grouped_by_config(self):
        model = NFModel(name="t")
        model.add_entry(make_entry(1, config=[mk_app("==", CFG_MODE, 1)]))
        model.add_entry(make_entry(2, config=[mk_app("==", CFG_MODE, 1)]))
        model.add_entry(make_entry(3, config=[mk_app("==", CFG_MODE, 2)]))
        model.add_entry(make_entry(4))
        assert len(model.tables) == 3
        assert model.n_entries == 4

    def test_forwarding_vs_drop(self):
        model = NFModel(name="t")
        model.add_entry(make_entry(1, sent=[({"dport": 80}, None)]))
        model.add_entry(make_entry(2))
        assert len(model.forwarding_entries()) == 1
        assert len(model.drop_entries()) == 1

    def test_state_atoms_collected(self):
        model = NFModel(name="t")
        model.add_entry(make_entry(1, state=[MEMBER]))
        assert model.state_atoms() == {"nat"}

    def test_flow_transform_identity_excluded(self):
        entry = make_entry(
            1,
            sent=[({"dport": SVar("pkt.dport", 0, 65535), "ttl": 9}, None)],
        )
        assert entry.flow_transform() == {"ttl": 9}


class TestRendering:
    def test_render_contains_tables(self, lb_result):
        text = render_model(lb_result.model)
        assert "config" in text
        assert "default action: drop" in text
        assert "f2b_nat" in text

    def test_sym_text_shapes(self):
        assert sym_text(MEMBER) == "f in nat"
        assert sym_text(mk_app("not", MEMBER)) == "f not in nat"
        assert "rr_idx" in sym_text(ST_IDX)
        assert sym_text(SDictVal("nat", "k", (0,))) == "nat[f][0]"

    def test_json_export_roundtrips(self, lb_result):
        payload = model_to_json(lb_result.model)
        data = json.loads(payload)
        assert data["name"] == lb_result.model.name
        assert data["variables"]["oisVar"]
        assert all("match" in e for t in data["tables"] for e in t["entries"])

    def test_dict_export_counts(self, lb_result):
        data = model_to_dict(lb_result.model)
        n = sum(len(t["entries"]) for t in data["tables"])
        assert n == lb_result.model.n_entries


class TestGuardEvaluation:
    def test_packet_field(self):
        pkt = Packet(dport=80)
        assert eval_symbolic(mk_app("==", PKT_DPORT, 80), {}, pkt) is True

    def test_state_variable(self):
        pkt = Packet()
        assert eval_symbolic(mk_app("<", ST_IDX, 2), {"rr_idx": 1}, pkt) is True

    def test_config_variable(self):
        assert eval_symbolic(mk_app("==", CFG_MODE, 1), {"mode": 1}, Packet()) is True

    def test_member_atom(self):
        pkt = Packet(ip_src=5)
        state = {"nat": {(5,): "x"}}
        assert eval_symbolic(MEMBER, state, pkt) is True
        assert eval_symbolic(MEMBER, {"nat": {}}, pkt) is False

    def test_dictval_with_path(self):
        key = (SVar("pkt.ip_src", 0, 2**32 - 1),)
        dv = SDictVal("nat", "canon", (1,), key=key)
        state = {"nat": {(5,): (10, 20)}}
        assert eval_symbolic(dv, state, Packet(ip_src=5)) == 20

    def test_missing_state_raises(self):
        with pytest.raises(GuardEvalError):
            eval_symbolic(ST_IDX, {}, Packet())

    def test_missing_key_raises(self):
        dv = SDictVal("nat", "canon", (), key=(SVar("pkt.ip_src", 0, 10),))
        with pytest.raises(GuardEvalError):
            eval_symbolic(dv, {"nat": {}}, Packet(ip_src=5))


class TestSimulator:
    def test_default_drop_when_nothing_matches(self, lb_result):
        sim = lb_result.make_simulator()
        # dport != LB_PORT and flow unknown: explicit drop entry matches
        out = sim.process(Packet(dport=9999))
        assert out == []
        assert sim.stats.packets == 1

    def test_stateful_sequence(self, lb_result):
        sim = lb_result.make_simulator()
        first = sim.process(Packet(dport=80, ip_src=7, sport=100, ip_dst=50529027))
        second = sim.process(Packet(dport=80, ip_src=7, sport=100, ip_dst=50529027))
        assert len(first) == len(second) == 1
        # same flow maps to the same backend/port
        assert first[0][0] == second[0][0]

    def test_matched_entries_counted(self, lb_result):
        sim = lb_result.make_simulator()
        sim.process(Packet(dport=80, ip_src=1, sport=2, ip_dst=3))
        assert sum(sim.stats.matched_entries.values()) == 1


class TestFSM:
    def test_lb_fsm_atoms(self, lb_result):
        fsm = build_fsm(lb_result.model)
        assert set(fsm.atoms) == {"f2b_nat", "b2f_nat"}

    def test_initial_state_all_absent(self, lb_result):
        fsm = build_fsm(lb_result.model)
        assert all(not member for _, member in fsm.initial)

    def test_new_flow_transition_populates_tables(self, lb_result):
        fsm = build_fsm(lb_result.model)
        outgoing = fsm.successors(fsm.initial)
        dst_states = {t.dst for t in outgoing if t.forwards}
        full = frozenset({("f2b_nat", True), ("b2f_nat", True)})
        assert full in dst_states

    def test_reachability_and_paths(self, lb_result):
        fsm = build_fsm(lb_result.model)
        reachable = fsm.reachable_states()
        assert fsm.initial in reachable
        paths = fsm.paths_to_all_states()
        for state in reachable:
            assert state in paths

    def test_render_state(self, lb_result):
        fsm = build_fsm(lb_result.model)
        text = fsm.render_state(fsm.initial)
        assert "f2b_nat" in text

    def test_firewall_fsm_has_teardown(self, firewall_result):
        fsm = build_fsm(firewall_result.model)
        tracked = frozenset({("conns", True)})
        back = [
            t for t in fsm.transitions if t.src == tracked and t.dst == fsm.initial
        ]
        assert back  # RST / final-ACK deletes the connection


class TestMatchIndex:
    """The exact-match entry index (simulator fast path).

    Contract: byte-identical to the linear scan (``use_index=False``),
    including first-match priority among entries that tie on the
    indexed field — the index only skips entries whose pinning
    conjunct is provably false for the packet.
    """

    def _mk_sim(self, entries, state=None, **kwargs):
        from repro.model.simulator import ModelSimulator

        model = NFModel(name="t")
        for entry in entries:
            model.add_entry(entry)
        return ModelSimulator(model, state if state is not None else {}, **kwargs)

    def test_index_picks_best_covered_field(self):
        entries = [
            make_entry(1, flow=[mk_app("==", PKT_DPORT, 80)]),
            make_entry(2, flow=[mk_app("==", PKT_DPORT, 443)]),
            make_entry(3, flow=[mk_app("==", SVar("pkt.proto", 0, 255), 6)]),
        ]
        sim = self._mk_sim(entries)
        assert sim.index_field == "dport"

    def test_constant_order_and_cfg_resolution(self):
        # ``const == pkt.f`` and ``pkt.f == cfg.x`` both pin the field.
        entries = [
            make_entry(1, flow=[mk_app("==", 80, PKT_DPORT)]),
            make_entry(2, flow=[mk_app("==", PKT_DPORT, SVar("cfg.svc", 0, 65535))]),
        ]
        sim = self._mk_sim(entries, state={"svc": 443})
        assert sim.index_field == "dport"
        assert sorted(sim._index) == [80, 443]

    def test_unresolvable_cfg_stays_residual(self):
        entries = [
            make_entry(1, flow=[mk_app("==", PKT_DPORT, SVar("cfg.gone", 0, 1))]),
            make_entry(2, flow=[mk_app("==", PKT_DPORT, 80)]),
        ]
        sim = self._mk_sim(entries, state={})
        # Only one entry pins a concrete value -> no index at all.
        assert sim.index_field is None

    def test_priority_tie_break_matches_scan(self):
        # Entry 1 (residual: no dport conjunct) must still beat entry 2
        # (indexed) when both guards hold, because it comes first.
        # Not an equality -> never pinned, so dport carries the index.
        always = mk_app("<", SVar("pkt.proto", 0, 255), 255)
        entries = [
            make_entry(1, flow=[always]),
            make_entry(2, flow=[always, mk_app("==", PKT_DPORT, 80)]),
            make_entry(3, flow=[always, mk_app("==", PKT_DPORT, 443)]),
        ]
        pkt = Packet(proto=6, dport=80)
        indexed = self._mk_sim(entries)
        scan = self._mk_sim(entries, use_index=False)
        assert indexed.index_field == "dport"
        assert indexed.match_entry(pkt).entry_id == 1
        assert scan.match_entry(pkt).entry_id == 1
        # And the symmetric case: indexed entry first.
        flipped = [
            make_entry(1, flow=[always, mk_app("==", PKT_DPORT, 80)]),
            make_entry(2, flow=[always]),
            make_entry(3, flow=[always, mk_app("==", PKT_DPORT, 80)]),
        ]
        for kwargs in ({}, {"use_index": False}):
            assert self._mk_sim(flipped, **kwargs).match_entry(pkt).entry_id == 1

    def test_miss_bucket_scans_only_residual(self):
        entries = [
            make_entry(1, flow=[mk_app("==", PKT_DPORT, 80)]),
            make_entry(2, flow=[mk_app("==", PKT_DPORT, 443)]),
            make_entry(3, flow=[mk_app("==", SVar("pkt.proto", 0, 255), 17)]),
        ]
        sim = self._mk_sim(entries)
        entry = sim.match_entry(Packet(proto=17, dport=9999))
        assert entry.entry_id == 3
        assert sim.stats.guard_evals == 1  # residual only, no bucket

    def test_byte_identical_to_scan_on_corpus(self, firewall_result, lb_result):
        import copy
        import random

        rng = random.Random(42)
        from repro.model.simulator import ModelSimulator

        for result in (firewall_result, lb_result):
            indexed = ModelSimulator(
                result.model, copy.deepcopy(result.module_env), result.pkt_param
            )
            scan = ModelSimulator(
                result.model,
                copy.deepcopy(result.module_env),
                result.pkt_param,
                use_index=False,
            )
            for _ in range(120):
                pkt = Packet(
                    ip_src=rng.randrange(2**32),
                    ip_dst=rng.randrange(2**32),
                    proto=rng.choice([6, 6, 17, 1]),
                    sport=rng.choice([80, 443, 1234, 22]),
                    dport=rng.choice([80, 443, 1234, 22]),
                    tcp_flags=rng.choice([0x02, 0x10, 0x12, 0x01]),
                )
                assert indexed.process(pkt.copy()) == scan.process(pkt.copy())
            assert indexed.state == scan.state
            # The index must not do *more* work than the scan.
            assert indexed.stats.guard_evals <= scan.stats.guard_evals

    def test_guard_evals_reduced_where_indexable(self, lb_result):
        import copy

        from repro.model.simulator import ModelSimulator

        indexed = ModelSimulator(
            lb_result.model, copy.deepcopy(lb_result.module_env), lb_result.pkt_param
        )
        scan = ModelSimulator(
            lb_result.model,
            copy.deepcopy(lb_result.module_env),
            lb_result.pkt_param,
            use_index=False,
        )
        assert indexed.index_field is not None
        for _ in range(50):
            pkt = Packet(ip_src=1, ip_dst=2, dport=9999, tcp_flags=0x02)
            indexed.process(pkt.copy())
            scan.process(pkt.copy())
        assert indexed.stats.guard_evals < scan.stats.guard_evals
