"""Tests for the TCP endpoint state machine and connection table."""

from __future__ import annotations

from repro.net.packet import TCP_ACK, TCP_FIN, TCP_RST, TCP_SYN, tcp_packet
from repro.net.tcp import (
    CLIENT_TO_SERVER,
    SERVER_TO_CLIENT,
    TcpConnectionTable,
    TcpEndpoint,
    TcpState,
)


def handshake(ep: TcpEndpoint) -> None:
    ep.segment(CLIENT_TO_SERVER, TCP_SYN)
    ep.segment(SERVER_TO_CLIENT, TCP_SYN | TCP_ACK)
    ep.segment(CLIENT_TO_SERVER, TCP_ACK)


class TestEndpoint:
    def test_three_way_handshake(self):
        ep = TcpEndpoint()
        assert ep.segment(CLIENT_TO_SERVER, TCP_SYN) == TcpState.SYN_RCVD
        assert ep.segment(SERVER_TO_CLIENT, TCP_SYN | TCP_ACK) == TcpState.SYN_SENT
        assert ep.segment(CLIENT_TO_SERVER, TCP_ACK) == TcpState.ESTABLISHED
        assert ep.established

    def test_data_without_handshake_stays_closed(self):
        ep = TcpEndpoint()
        assert ep.segment(CLIENT_TO_SERVER, TCP_ACK) == TcpState.CLOSED

    def test_syn_retransmission_is_stable(self):
        ep = TcpEndpoint()
        ep.segment(CLIENT_TO_SERVER, TCP_SYN)
        assert ep.segment(CLIENT_TO_SERVER, TCP_SYN) == TcpState.SYN_RCVD

    def test_rst_resets_from_any_state(self):
        ep = TcpEndpoint()
        handshake(ep)
        assert ep.segment(CLIENT_TO_SERVER, TCP_RST) == TcpState.CLOSED

    def test_client_close_sequence(self):
        ep = TcpEndpoint()
        handshake(ep)
        assert ep.segment(CLIENT_TO_SERVER, TCP_FIN) == TcpState.FIN_WAIT_1
        assert ep.segment(SERVER_TO_CLIENT, TCP_ACK) == TcpState.FIN_WAIT_2
        assert ep.segment(SERVER_TO_CLIENT, TCP_FIN) == TcpState.TIME_WAIT

    def test_server_close_sequence(self):
        ep = TcpEndpoint()
        handshake(ep)
        assert ep.segment(SERVER_TO_CLIENT, TCP_FIN) == TcpState.CLOSE_WAIT
        assert ep.segment(CLIENT_TO_SERVER, TCP_FIN) == TcpState.LAST_ACK
        assert ep.segment(SERVER_TO_CLIENT, TCP_ACK) == TcpState.CLOSED

    def test_simultaneous_close(self):
        ep = TcpEndpoint()
        handshake(ep)
        ep.segment(CLIENT_TO_SERVER, TCP_FIN)
        assert ep.segment(SERVER_TO_CLIENT, TCP_FIN) == TcpState.CLOSING
        assert ep.segment(CLIENT_TO_SERVER, TCP_ACK) == TcpState.TIME_WAIT


class TestConnectionTable:
    def _flow(self, flags, reverse=False):
        if reverse:
            return tcp_packet(2, 80, 1, 1000, flags=flags)
        return tcp_packet(1, 1000, 2, 80, flags=flags)

    def test_tracks_handshake_across_directions(self):
        table = TcpConnectionTable()
        table.observe(self._flow(TCP_SYN))
        table.observe(self._flow(TCP_SYN | TCP_ACK, reverse=True))
        before, after = table.observe(self._flow(TCP_ACK))
        assert after == TcpState.ESTABLISHED
        assert table.established(self._flow(0))

    def test_unknown_flow_is_closed(self):
        table = TcpConnectionTable()
        assert table.state_of(self._flow(0)) == TcpState.CLOSED

    def test_rst_removes_connection(self):
        table = TcpConnectionTable()
        table.observe(self._flow(TCP_SYN))
        assert len(table) == 1
        table.observe(self._flow(TCP_RST))
        assert len(table) == 0

    def test_observe_returns_before_and_after(self):
        table = TcpConnectionTable()
        before, after = table.observe(self._flow(TCP_SYN))
        assert before == TcpState.CLOSED
        assert after == TcpState.SYN_RCVD

    def test_direction_detection(self):
        table = TcpConnectionTable()
        table.observe(self._flow(TCP_SYN))
        # A SYN+ACK from the *initiator* direction must not complete SYN_RCVD.
        before, after = table.observe(self._flow(TCP_SYN | TCP_ACK))
        assert after == TcpState.SYN_RCVD
