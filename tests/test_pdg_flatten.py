"""Tests for whole-program flattening (inlining) and the PDG."""

from __future__ import annotations

import pytest

from repro.interp import Env, Interpreter
from repro.lang.errors import NFPyError
from repro.lang.ir import iter_block
from repro.lang.parser import parse_program
from repro.net.packet import Packet
from repro.pdg.flatten import flatten_program
from repro.pdg.pdg import build_pdg


def run_flat(source: str, entry: str, pkt: Packet):
    """Execute the flattened program on one packet; return sent packets."""
    program = parse_program(source, entry=entry)
    flat = flatten_program(program)
    interp = Interpreter()
    env = Env(globals={flat.entry_params[0]: pkt})
    interp.run_block(flat.block, env)
    return interp.sent, env


def run_direct(source: str, entry: str, pkt: Packet):
    program = parse_program(source, entry=entry)
    interp = Interpreter(program=program)
    interp.run_module()
    return interp.process_packet(pkt)


AGREEMENT_SOURCES = [
    # simple helper call
    (
        "W = 3\n"
        "def scale(v):\n    return v * W\n"
        "def cb(pkt):\n    pkt.ttl = scale(2)\n    send_packet(pkt)\n",
        "cb",
    ),
    # helper mutating global state
    (
        "tbl = {}\nnxt = 5\n"
        "def alloc(k):\n    global nxt\n    tbl[k] = nxt\n    nxt += 1\n    return tbl[k]\n"
        "def cb(pkt):\n    p = alloc(pkt.ip_src)\n    pkt.sport = p\n    send_packet(pkt)\n",
        "cb",
    ),
    # return inside a loop of the helper
    (
        "XS = [3, 5, 7]\n"
        "def find(v):\n    for x in XS:\n        if x == v:\n            return 1\n    return 0\n"
        "def cb(pkt):\n    if find(pkt.ttl) == 1:\n        send_packet(pkt)\n",
        "cb",
    ),
    # nested helpers
    (
        "def inner(v):\n    return v + 1\n"
        "def outer(v):\n    return inner(v) * 2\n"
        "def cb(pkt):\n    pkt.ttl = outer(3)\n    send_packet(pkt)\n",
        "cb",
    ),
    # early returns in helper (drop path)
    (
        "def check(v):\n    if v < 10:\n        return 0\n    if v > 200:\n        return 0\n    return 1\n"
        "def cb(pkt):\n    if check(pkt.ttl) == 1:\n        send_packet(pkt)\n",
        "cb",
    ),
]


class TestInlining:
    @pytest.mark.parametrize("source,entry", AGREEMENT_SOURCES)
    @pytest.mark.parametrize("ttl", [3, 7, 64, 255])
    def test_flat_agrees_with_direct(self, source, entry, ttl):
        pkt = Packet(ttl=ttl)
        flat_sent, _ = run_flat(source, entry, pkt.copy())
        direct_sent = run_direct(source, entry, pkt.copy())
        assert flat_sent == direct_sent

    def test_locals_renamed_no_capture(self):
        source = (
            "def helper(x):\n    y = x + 1\n    return y\n"
            "def cb(pkt):\n    y = 100\n    z = helper(1)\n    pkt.ttl = y + z\n    send_packet(pkt)\n"
        )
        sent, _ = run_flat(source, "cb", Packet())
        assert sent[0][0].ttl == 102

    def test_repeated_calls_get_fresh_instances(self):
        source = (
            "def bump(x):\n    t = x + 1\n    return t\n"
            "def cb(pkt):\n    a = bump(1)\n    b = bump(10)\n    pkt.ttl = a + b\n    send_packet(pkt)\n"
        )
        sent, _ = run_flat(source, "cb", Packet())
        assert sent[0][0].ttl == 13

    def test_module_starter_calls_skipped(self):
        source = (
            "def cb(pkt):\n    send_packet(pkt)\n"
            "def Main():\n    sniff('eth0', cb)\n"
            "Main()\n"
        )
        program = parse_program(source, entry="cb")
        flat = flatten_program(program)
        # Nothing from Main/sniff should appear in the flat block.
        from repro.lang.pretty import pretty_stmt

        text = "\n".join(pretty_stmt(s) for s in flat.block)
        assert "sniff" not in text

    def test_weak_update_does_not_localise_global(self):
        source = (
            "tbl = {}\n"
            "def record(k):\n    tbl[k] = 1\n    return 0\n"
            "def cb(pkt):\n    record(pkt.ip_src)\n    send_packet(pkt)\n"
        )
        _, env = run_flat(source, "cb", Packet(ip_src=9))
        assert env.globals["tbl"] == {9: 1}

    def test_call_in_short_circuit_rejected(self):
        source = (
            "def t(v):\n    return 1\n"
            "def cb(pkt):\n    if pkt.ttl > 1 and t(pkt.ttl):\n        send_packet(pkt)\n"
        )
        with pytest.raises(NFPyError):
            flatten_program(parse_program(source, entry="cb"))

    def test_origin_maps_to_source_lines(self):
        source = "x = 1\n\ndef cb(pkt):\n    send_packet(pkt)\n"
        flat = flatten_program(parse_program(source, entry="cb"))
        lines = flat.source_lines({s.sid for s in iter_block(flat.block)})
        assert {1, 4} <= lines

    def test_module_sids_marked(self):
        source = "x = 1\ny = 2\n\ndef cb(pkt):\n    send_packet(pkt)\n"
        flat = flatten_program(parse_program(source, entry="cb"))
        assert len(flat.module_sids) == 2

    def test_no_entry_raises(self):
        with pytest.raises(ValueError):
            flatten_program(parse_program("x = 1\n"))


class TestPDG:
    def test_data_and_control_preds(self):
        source = (
            "def cb(pkt):\n"
            "    x = pkt.ttl\n"
            "    if x > 5:\n"
            "        y = x + 1\n"
            "        send_packet(pkt)\n"
        )
        flat = flatten_program(parse_program(source, entry="cb"))
        pdg = build_pdg(flat.block, flat.entry_vars())
        stmts = list(iter_block(flat.block))
        x_def, branch, y_def, send = stmts
        assert x_def.sid in pdg.data_preds[branch.sid]
        assert x_def.sid in pdg.data_preds[y_def.sid]
        assert branch.sid in pdg.control_preds[y_def.sid]
        assert branch.sid in pdg.control_preds[send.sid]

    def test_backward_and_forward_reachability(self):
        source = (
            "def cb(pkt):\n"
            "    a = pkt.ttl\n"
            "    b = a + 1\n"
            "    c = 42\n"
            "    pkt.ttl = b\n"
            "    send_packet(pkt)\n"
        )
        flat = flatten_program(parse_program(source, entry="cb"))
        pdg = build_pdg(flat.block, flat.entry_vars())
        a_def, b_def, c_def, store, send = list(iter_block(flat.block))
        back = pdg.backward_reachable({send.sid})
        assert {a_def.sid, b_def.sid, store.sid, send.sid} <= back
        assert c_def.sid not in back
        fwd = pdg.forward_reachable({a_def.sid})
        assert {b_def.sid, store.sid} <= fwd
        assert c_def.sid not in fwd

    def test_edge_count_positive(self, lb_result):
        assert lb_result.pdg.edge_count() > 20
