"""Tests for concrete service chains and model diffing."""

from __future__ import annotations

import pytest

from repro.model.diff import diff_models
from repro.net.chain import ServiceChain
from repro.net.generator import TrafficGenerator, WorkloadSpec
from repro.net.packet import Packet, TCP_ACK, TCP_SYN
from repro.nfactor.algorithm import NFactor
from repro.nfs import get_nf, nf_names

from tests.conftest import synthesize_cached


class TestServiceChain:
    def test_single_hop_forwarding(self, monitor_result):
        chain = ServiceChain.of_references([monitor_result])
        trace = chain.process(Packet())
        assert trace.delivered
        assert trace.dropped_at is None

    def test_drop_recorded_with_nf_name(self, firewall_result):
        chain = ServiceChain.of_references([firewall_result])
        # untrusted SYN -> firewall drops
        trace = chain.process(Packet(tcp_flags=TCP_SYN, in_port=1))
        assert trace.dropped_at == "firewall"
        assert trace.delivered == []

    def test_two_hop_chain_fw_then_lb(self, firewall_result, lb_result):
        chain = ServiceChain.of_references([firewall_result, lb_result])
        # trusted SYN to the LB's VIP: firewall admits, LB rewrites
        pkt = Packet(
            tcp_flags=TCP_SYN, in_port=0,
            ip_src=7, sport=999, ip_dst=50529027, dport=80,
        )
        trace = chain.process(pkt)
        assert trace.dropped_at is None
        out = trace.delivered[0]
        assert out.ip_src == 50529027       # LB applied source NAT
        assert out.ip_dst in (16843009, 33686018)

    def test_simulator_chain_matches_reference_chain(
        self, firewall_result, lb_result
    ):
        """The synthesized models compose like the real NFs do."""
        spec = get_nf("firewall")
        workload = list(
            TrafficGenerator(
                WorkloadSpec(n_packets=150, seed=9, interesting=spec.interesting)
            ).packets()
        )
        ref_chain = ServiceChain.of_references([firewall_result, lb_result])
        sim_chain = ServiceChain.of_simulators([firewall_result, lb_result])
        for pkt in workload:
            ref_trace = ref_chain.process(pkt.copy())
            sim_trace = sim_chain.process(pkt.copy())
            assert ref_trace.delivered == sim_trace.delivered

    def test_delivery_rate(self, firewall_result):
        chain = ServiceChain.of_references([firewall_result])
        pkts = [Packet(tcp_flags=TCP_SYN, in_port=0, sport=i + 1, dport=8000 + i)
                for i in range(5)]
        pkts += [Packet(tcp_flags=TCP_ACK, in_port=1, sport=50, dport=51)]
        rate = chain.delivery_rate(pkts)
        assert rate == pytest.approx(5 / 6)

    def test_flooding_fans_out(self, monitor_result):
        # monitor forwards 1:1; chain of two monitors delivers 1 packet
        chain = ServiceChain.of_references([monitor_result, monitor_result])
        trace = chain.process(Packet())
        assert len(trace.delivered) == 1

    def test_hop_records_full_fan_in(self):
        """Regression: a hop after a flooding NF records *all* inputs.

        ``packets_in`` used to keep only ``current[0]``, silently losing
        the rest of the fan-in."""

        def duplicate(pkt):
            return [(pkt.copy(), 0), (pkt.copy(), 1)]

        def forward(pkt):
            return [(pkt, 0)]

        chain = ServiceChain([("dup", duplicate), ("fwd", forward)])
        trace = chain.process(Packet(sport=42))
        dup_hop, fwd_hop = trace.hops
        assert len(dup_hop.packets_in) == 1
        assert len(dup_hop.packets_out) == 2
        assert len(fwd_hop.packets_in) == 2          # the whole fan-in
        assert all(p.sport == 42 for p in fwd_hop.packets_in)
        assert fwd_hop.packet_in == fwd_hop.packets_in[0]  # alias intact

    def test_hop_record_alias_on_empty_input(self):
        from repro.net.chain import HopRecord

        hop = HopRecord(nf="x", packets_in=[], packets_out=[])
        assert hop.packet_in is None
        assert hop.dropped


class TestCorpusDifferentialIdentity:
    """Compiled simulator chains == reference chains, whole corpus."""

    @pytest.mark.parametrize("name", nf_names())
    def test_single_nf_chain_identical(self, name):
        result = synthesize_cached(name)
        spec = get_nf(name)
        workload = list(
            TrafficGenerator(
                WorkloadSpec(
                    n_packets=120, seed=13, interesting=spec.interesting
                )
            ).packets()
        )
        ref_chain = ServiceChain.of_references([result])
        sim_chain = ServiceChain.of_simulators([result], compiled=True)
        for pkt in workload:
            ref = ref_chain.process(pkt.copy())
            sim = sim_chain.process(pkt.copy())
            assert ref.delivered == sim.delivered, (name, pkt)
            assert ref.dropped_at == sim.dropped_at, (name, pkt)

    def test_multi_hop_chain_identical(self):
        names = ["firewall", "nat", "monitor", "l2switch"]
        results = [synthesize_cached(n) for n in names]
        spec = get_nf("firewall")
        workload = list(
            TrafficGenerator(
                WorkloadSpec(
                    n_packets=150, seed=21, interesting=spec.interesting
                )
            ).packets()
        )
        ref_chain = ServiceChain.of_references(results)
        sim_chain = ServiceChain.of_simulators(results, compiled=True)
        for pkt in workload:
            ref = ref_chain.process(pkt.copy())
            sim = sim_chain.process(pkt.copy())
            assert ref.delivered == sim.delivered, pkt
            assert ref.dropped_at == sim.dropped_at, pkt


class TestModelDiff:
    def test_same_nf_is_equal(self):
        spec = get_nf("monitor")
        a = NFactor(spec.source, name="monitor").synthesize()
        b = NFactor(spec.source, name="monitor").synthesize()
        diff = diff_models(a, b, n_packets=200)
        assert diff.behaviourally_equal
        assert not diff.state_tables_only_a and not diff.state_tables_only_b

    def test_different_nfs_diverge(self, monitor_result, firewall_result):
        spec = get_nf("firewall")
        diff = diff_models(
            monitor_result, firewall_result,
            n_packets=200, interesting=spec.interesting,
        )
        assert not diff.behaviourally_equal
        assert any(d.verdict_differs for d in diff.divergences)

    def test_structural_report_two_lb_implementations(
        self, lb_result, balance_result
    ):
        """The paper's motivating case: two vendors' L4 load balancers.

        The Fig.-1 LB and *balance* implement the same function class
        with different mechanics; the structural diff surfaces that:
        different state tables, and only the Fig.-1 LB rewrites the
        source address (full NAT vs. destination rewrite)."""
        diff = diff_models(lb_result, balance_result, n_packets=100)
        assert diff.state_tables_only_a >= {"f2b_nat", "b2f_nat"}
        assert "__tcp_conns" in diff.state_tables_only_b
        assert "ip_src" in diff.rewrite_fields_only_a
        assert not diff.behaviourally_equal  # different VIP/ports/semantics

    def test_summary_text(self, monitor_result):
        diff = diff_models(monitor_result, monitor_result, n_packets=20)
        assert "no divergence" in diff.summary()
