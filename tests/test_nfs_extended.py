"""Behavioural + synthesis tests for the extended corpus
(l2switch, ratelimiter, proxycache) and the symbolic-engine features
they exercise (dict clear, dict length, key aliasing)."""

from __future__ import annotations

import pytest

from repro.equiv.differential import differential_test
from repro.interp import Interpreter
from repro.lang.parser import parse_program
from repro.net.packet import Packet
from repro.nfactor.algorithm import NFactor
from repro.nfactor.transforms import normalize_structure
from repro.nfs import get_nf
from repro.symbolic.engine import SymbolicEngine
from repro.symbolic.expr import SymDict, SymPacket


def make_interp(name: str) -> Interpreter:
    spec = get_nf(name)
    program, _ = normalize_structure(parse_program(spec.source, name=name))
    interp = Interpreter(program=program)
    interp.run_module()
    return interp


@pytest.fixture(scope="module")
def l2_result():
    return NFactor(get_nf("l2switch").source, name="l2switch").synthesize()


@pytest.fixture(scope="module")
def rl_result():
    return NFactor(get_nf("ratelimiter").source, name="ratelimiter").synthesize()


@pytest.fixture(scope="module")
def cache_result():
    return NFactor(get_nf("proxycache").source, name="proxycache").synthesize()


BCAST = 281474976710655


class TestL2Switch:
    def test_unknown_destination_floods(self):
        interp = make_interp("l2switch")
        out = interp.process_packet(Packet(eth_src=1, eth_dst=2, in_port=0))
        assert out[0][1] == 255  # flood port

    def test_learned_destination_forwards(self):
        interp = make_interp("l2switch")
        interp.process_packet(Packet(eth_src=2, eth_dst=9, in_port=5))
        out = interp.process_packet(Packet(eth_src=1, eth_dst=2, in_port=0))
        assert out[0][1] == 5

    def test_same_segment_filtered(self):
        interp = make_interp("l2switch")
        interp.process_packet(Packet(eth_src=2, eth_dst=9, in_port=5))
        out = interp.process_packet(Packet(eth_src=1, eth_dst=2, in_port=5))
        assert out == []
        assert interp.globals["filtered_stat"] == 1

    def test_station_move_relearned(self):
        interp = make_interp("l2switch")
        interp.process_packet(Packet(eth_src=2, eth_dst=9, in_port=5))
        interp.process_packet(Packet(eth_src=2, eth_dst=9, in_port=6))
        assert interp.globals["mac_table"][2] == 6
        assert interp.globals["moved_stat"] == 1

    def test_broadcast_floods_and_not_learned_as_source(self):
        interp = make_interp("l2switch")
        out = interp.process_packet(Packet(eth_src=BCAST, eth_dst=BCAST, in_port=1))
        assert out[0][1] == 255
        assert BCAST not in interp.globals["mac_table"]

    def test_self_addressed_frame_filtered(self):
        """The aliasing corner: a frame whose dst equals its own src is
        learned and immediately filtered (out_port == in_port)."""
        interp = make_interp("l2switch")
        out = interp.process_packet(Packet(eth_src=7, eth_dst=7, in_port=2))
        assert out == []
        assert interp.globals["mac_table"][7] == 2

    def test_model_differential(self, l2_result):
        spec = get_nf("l2switch")
        report = differential_test(
            l2_result, n_packets=400, seed=7, interesting=spec.interesting
        )
        assert report.identical, report.summary()

    def test_mac_table_is_ois(self, l2_result):
        assert "mac_table" in l2_result.categories.ois_vars
        assert "flooded_stat" in l2_result.categories.log_vars


class TestRateLimiter:
    def test_budget_enforced(self):
        interp = make_interp("ratelimiter")
        outs = [interp.process_packet(Packet(ip_src=5)) for _ in range(12)]
        forwarded = sum(1 for o in outs if o)
        assert forwarded == 8  # BUDGET

    def test_independent_buckets(self):
        interp = make_interp("ratelimiter")
        for _ in range(8):
            interp.process_packet(Packet(ip_src=5))
        assert interp.process_packet(Packet(ip_src=5)) == []
        assert len(interp.process_packet(Packet(ip_src=6))) == 1

    def test_window_reset_refills(self):
        interp = make_interp("ratelimiter")
        for _ in range(8):
            interp.process_packet(Packet(ip_src=5))
        assert interp.process_packet(Packet(ip_src=5)) == []
        # burn the rest of the window with another source
        while interp.globals["window_left"] != 64:
            interp.process_packet(Packet(ip_src=6))
        assert len(interp.process_packet(Packet(ip_src=5))) == 1
        assert interp.globals["resets_stat"] >= 1

    def test_exempt_network_never_limited(self):
        interp = make_interp("ratelimiter")
        mgmt = 167772161
        outs = [interp.process_packet(Packet(ip_src=mgmt)) for _ in range(20)]
        assert all(outs)

    def test_model_differential(self, rl_result):
        spec = get_nf("ratelimiter")
        report = differential_test(
            rl_result, n_packets=400, seed=7, interesting=spec.interesting
        )
        assert report.identical, report.summary()

    def test_window_counter_is_ois(self, rl_result):
        assert {"buckets", "window_left"} <= rl_result.categories.ois_vars


class TestProxyCache:
    REQ = dict(proto=6, ip_src=500, sport=40000, ip_dst=1000, dport=80)

    def test_miss_forwards_and_registers(self):
        interp = make_interp("proxycache")
        out = interp.process_packet(Packet(payload_sig=7, **self.REQ))
        assert len(out) == 1
        assert out[0][0].ip_dst == 1000  # forwarded upstream unchanged
        assert interp.globals["pending"]

    def test_response_fills_cache(self):
        interp = make_interp("proxycache")
        interp.process_packet(Packet(payload_sig=7, **self.REQ))
        resp = Packet(
            proto=6, ip_src=1000, sport=80, ip_dst=500, dport=40000, payload_sig=99
        )
        interp.process_packet(resp)
        assert interp.globals["cache"] == {(1000, 7): 99}
        assert interp.globals["pending"] == {}

    def test_hit_answers_locally(self):
        interp = make_interp("proxycache")
        interp.process_packet(Packet(payload_sig=7, **self.REQ))
        interp.process_packet(
            Packet(proto=6, ip_src=1000, sport=80, ip_dst=500, dport=40000, payload_sig=99)
        )
        out = interp.process_packet(Packet(payload_sig=7, **self.REQ))
        answer = out[0][0]
        assert answer.ip_src == 1000 and answer.ip_dst == 500  # swapped
        assert answer.payload_sig == 99                        # cached body
        assert interp.globals["hit_stat"] == 1

    def test_non_tcp_bypasses(self):
        interp = make_interp("proxycache")
        out = interp.process_packet(Packet(proto=17))
        assert len(out) == 1
        assert interp.globals["bypass_stat"] == 1

    def test_model_differential(self, cache_result):
        spec = get_nf("proxycache")
        report = differential_test(
            cache_result, n_packets=400, seed=7, interesting=spec.interesting
        )
        assert report.identical, report.summary()


class TestSymbolicDictFeatures:
    def _explore(self, source, env):
        program = parse_program(source, entry="cb")
        from repro.pdg.flatten import flatten_program

        flat = flatten_program(program)
        engine = SymbolicEngine()
        block = [s for s in flat.block if s.sid not in flat.module_sids]
        full = {"pkt": SymPacket.fresh()}
        full.update(env)
        return engine.explore(block, full), engine

    def test_clear_makes_membership_false(self):
        paths, _ = self._explore(
            "def cb(pkt):\n"
            "    table.clear()\n"
            "    if pkt.ip_src in table:\n"
            "        send_packet(pkt)\n",
            {"table": SymDict("table")},
        )
        assert len(paths) == 1
        assert paths[0].drops

    def test_write_after_clear_visible(self):
        paths, _ = self._explore(
            "def cb(pkt):\n"
            "    table.clear()\n"
            "    table[pkt.ip_src] = 1\n"
            "    if pkt.ip_src in table:\n"
            "        send_packet(pkt)\n",
            {"table": SymDict("table")},
        )
        assert len(paths) == 1
        assert not paths[0].drops

    def test_dictlen_forks(self):
        paths, _ = self._explore(
            "def cb(pkt):\n"
            "    if len(table) < 10:\n"
            "        send_packet(pkt)\n",
            {"table": SymDict("table")},
        )
        assert len(paths) == 2

    def test_alias_membership_disjunction(self):
        """A probe with a different key expression can still hit a
        written entry when the keys are equal at runtime."""
        paths, _ = self._explore(
            "def cb(pkt):\n"
            "    table[pkt.eth_src] = pkt.in_port\n"
            "    if pkt.eth_dst in table:\n"
            "        send_packet(pkt)\n",
            {"table": SymDict("table")},
        )
        # both arms feasible: dst == src (hit via alias) and genuinely new
        assert len(paths) == 2

    def test_alias_read_conditional(self):
        paths, _ = self._explore(
            "def cb(pkt):\n"
            "    table[pkt.eth_src] = 7\n"
            "    if pkt.eth_dst in table:\n"
            "        v = table[pkt.eth_dst]\n"
            "        if v == 7:\n"
            "            send_packet(pkt)\n",
            {"table": SymDict("table")},
        )
        # some forwarding path must exist where the alias yields 7
        assert any(not p.drops for p in paths)
