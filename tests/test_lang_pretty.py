"""Tests for the pretty printer: output must re-parse to equal behaviour."""

from __future__ import annotations

import pytest

from repro.interp import Interpreter
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program, pretty_slice, pretty_stmt
from repro.net.packet import Packet

ROUNDTRIP_SOURCES = [
    "x = 1\ny = (1, 2)\nz = [1, 2, 3]\nd = {1: 2}\n",
    "def f(a, b):\n    return (a + b) * 2 - a // 3 % 5\n",
    "def f(a):\n    if a > 1 and a < 10 or not a:\n        return 1\n    return 0\n",
    "def f(xs):\n    t = 0\n    for x in xs:\n        t += x\n    return t\n",
    "def f(d, k):\n    if k in d:\n        del d[k]\n    d[k] = 1\n    return d[k]\n",
    "def f(a):\n    x = 1 if a else 2\n    return -x\n",
    "def f(xs):\n    xs.append(5)\n    return xs.pop()\n",
    "def f(a):\n    while a > 0:\n        a -= 1\n        if a == 3:\n            break\n        if a == 5:\n            continue\n    return a\n",
]


@pytest.mark.parametrize("source", ROUNDTRIP_SOURCES)
def test_pretty_output_reparses(source):
    program = parse_program(source)
    text = pretty_program(program)
    reparsed = parse_program(text)
    assert pretty_program(reparsed) == text  # fixpoint after one round


@pytest.mark.parametrize(
    "source,args,expected",
    [
        ("def f(a, b):\n    return (a + b) * 2\n", [3, 4], 14),
        ("def f(a):\n    if 1 <= a <= 5:\n        return 1\n    return 0\n", [3], 1),
        ("def f(xs):\n    t = 0\n    for x in xs:\n        t += x\n    return t\n", [[1, 2, 3]], 6),
        ("def f(a):\n    while a > 0:\n        a -= 2\n    return a\n", [7], -1),
    ],
)
def test_roundtrip_preserves_semantics(source, args, expected):
    def run(src):
        program = parse_program(src)
        return Interpreter(program=program).call("f", args)

    assert run(source) == expected
    assert run(pretty_program(parse_program(source))) == expected


def test_pretty_slice_marks_lines(lb_result):
    text = pretty_slice(lb_result.program, set())
    assert ">> " not in text
    marked = pretty_slice(
        lb_result.program,
        {s.sid for s in lb_result.program.all_stmts()},
    )
    assert marked.count(">> ") > 10


def test_pretty_stmt_multiline_if():
    program = parse_program("def f(a):\n    if a:\n        x = 1\n    else:\n        x = 2\n")
    text = pretty_stmt(program.functions["f"].body[0])
    assert text.splitlines()[0] == "if a:"
    assert "else:" in text
