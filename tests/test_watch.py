"""The watch loop (docs/internals.md §15): function-level fingerprints,
the polling watcher, the ``model.diff`` changelog, the rebuild daemon
and the serve-tier zero-downtime hot-swap."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro import cache as artifact_cache
from repro.model.diff import model_changelog
from repro.nfactor.algorithm import NFactorConfig, synthesize_model_cached
from repro.watch import SourceWatcher, WatchDaemon, WatchOptions, parse_target

MULTI = '''LIMIT = 10

def helper(pkt):
    return pkt.dport + 1

def h_main(pkt):
    if helper(pkt) > LIMIT:
        send_packet(pkt)

def h_aux(pkt):
    if pkt.sport == 53:
        send_packet(pkt)

if __name__ == "__main__":
    pass
'''


# -- function-level source units ---------------------------------------------


class TestSourceUnits:
    def test_units_restricted_to_reachable(self):
        units = artifact_cache.source_units(MULTI, "h_aux")
        names = [u[1] for u in units if u[0] == "fn"]
        assert names == ["h_aux"]  # helper/h_main are unreachable

    def test_edit_to_unreachable_fn_keeps_material(self):
        edited = MULTI.replace("> LIMIT", ">= LIMIT")
        assert artifact_cache.frontend_key_material(
            MULTI, "x", "h_aux"
        ) == artifact_cache.frontend_key_material(edited, "x", "h_aux")
        assert artifact_cache.frontend_key_material(
            MULTI, "x", "h_main"
        ) != artifact_cache.frontend_key_material(edited, "x", "h_main")

    def test_transitive_helper_edit_invalidates_caller(self):
        edited = MULTI.replace("+ 1", "+ 2")
        assert artifact_cache.frontend_key_material(
            MULTI, "x", "h_main"
        ) != artifact_cache.frontend_key_material(edited, "x", "h_main")

    def test_module_body_edit_invalidates_every_target(self):
        edited = MULTI.replace("LIMIT = 10", "LIMIT = 11")
        for entry in ("h_main", "h_aux"):
            assert artifact_cache.frontend_key_material(
                MULTI, "x", entry
            ) != artifact_cache.frontend_key_material(edited, "x", entry)

    def test_comment_and_main_guard_edits_are_invisible(self):
        commented = MULTI.replace("def h_aux", "# tweak\ndef h_aux")
        guarded = MULTI.replace("    pass", "    h_main(None)")
        for entry in ("h_main", "h_aux"):
            base = artifact_cache.frontend_key_material(MULTI, "x", entry)
            assert artifact_cache.frontend_key_material(
                commented, "x", entry
            ) == base
            assert artifact_cache.frontend_key_material(guarded, "x", entry) == base

    def test_sniff_callback_pins_entry_without_explicit_entry(self):
        src = MULTI.replace('if __name__', 'sniff("eth0", h_aux)\n\nif __name__')
        units = artifact_cache.source_units(src, None)
        names = [u[1] for u in units if u[0] == "fn"]
        assert names == ["h_aux"]

    def test_unknown_entry_falls_back_to_all_functions(self):
        units = artifact_cache.source_units(MULTI, None)
        names = [u[1] for u in units if u[0] == "fn"]
        assert names == ["helper", "h_main", "h_aux"]

    def test_syntax_error_falls_back_to_whole_source(self):
        broken = MULTI + "\ndef oops(:\n"
        assert artifact_cache.source_units(broken, "h_aux") == (
            ("source", broken),
        )

    def test_changed_units_names_the_edited_handler(self):
        edited = MULTI.replace("== 53", "== 123")
        assert artifact_cache.changed_units(MULTI, edited) == ["fn:h_aux"]
        assert artifact_cache.changed_units(MULTI, MULTI) == []


# -- incremental invalidation through the artifact cache ----------------------


class TestIncrementalCache:
    def test_sibling_edit_is_a_model_tier_hit_and_byte_identical(self, tmp_path):
        with artifact_cache.override(
            directory=str(tmp_path / "cache"), enabled=True
        ):
            cold = synthesize_model_cached(MULTI, name="m", entry="h_aux")
            assert not cold.cached
            edited = MULTI.replace("> LIMIT", ">= LIMIT")  # h_main only
            warm = synthesize_model_cached(edited, name="m", entry="h_aux")
            assert warm.cached
        # Acceptance: the incremental path changes nothing but speed —
        # the cached hit is byte-identical to a fresh batch synthesis
        # of the edited source.
        fresh = synthesize_model_cached(
            edited, name="m", entry="h_aux",
            config=NFactorConfig(artifact_cache=False),
        )
        assert warm.model_json == fresh.model_json

    def test_edited_target_is_a_miss(self, tmp_path):
        with artifact_cache.override(
            directory=str(tmp_path / "cache"), enabled=True
        ):
            synthesize_model_cached(MULTI, name="m", entry="h_main")
            edited = MULTI.replace("> LIMIT", ">= LIMIT")
            assert not synthesize_model_cached(
                edited, name="m", entry="h_main"
            ).cached

    def test_per_kind_miss_counters(self, tmp_path):
        with artifact_cache.override(
            directory=str(tmp_path / "cache"), enabled=True
        ):
            store = artifact_cache.get_store()
            key = artifact_cache.artifact_key("model", ("absent",))
            assert store.get_object("model", key) is None
            assert store.counters.get("kind.model.misses") == 1
            store.put_object("model", key, "value")
            assert store.get_object("model", key) == "value"
            assert store.counters.get("kind.model.hits") == 1


# -- the polling watcher ------------------------------------------------------


class TestSourceWatcher:
    def test_register_then_quiet_poll(self, tmp_path):
        path = tmp_path / "nf.py"
        path.write_text(MULTI)
        watcher = SourceWatcher()
        assert watcher.register(str(path)) == MULTI
        assert watcher.poll() == []

    def test_touch_without_content_change_is_quiet(self, tmp_path):
        path = tmp_path / "nf.py"
        path.write_text(MULTI)
        watcher = SourceWatcher()
        watcher.register(str(path))
        path.write_text(MULTI)  # new mtime, same content
        assert watcher.poll() == []

    def test_content_change_is_reported_once(self, tmp_path):
        path = tmp_path / "nf.py"
        path.write_text(MULTI)
        watcher = SourceWatcher()
        watcher.register(str(path))
        edited = MULTI.replace("== 53", "== 99")
        path.write_text(edited)
        changes = watcher.poll()
        assert len(changes) == 1 and changes[0].source == edited
        assert watcher.poll() == []


# -- model.diff changelog edge cases (satellite) ------------------------------


def _entry(eid, flow="dport == 80", aflow="send(f)", astate="*", drops=False):
    return {
        "entry_id": eid, "path_id": eid,
        "match": {"flow": flow, "state": "*"},
        "action": {"flow": aflow, "state": astate},
        "drops": drops,
    }


def _model(entries, config="*", name="m"):
    return {
        "name": name, "default_action": "drop", "variables": {},
        "tables": [{"config": config, "entries": entries}],
    }


class TestModelChangelog:
    def test_reorder_only_is_empty(self):
        a = _model([_entry(1), _entry(2, flow="dport == 22")])
        b = _model([_entry(2, flow="dport == 22"), _entry(1)])
        log = model_changelog(a, b)
        assert log.empty and log.unchanged == 2

    def test_guard_identical_action_change(self):
        a = _model([_entry(1)])
        b = _model([_entry(1, aflow="drop", drops=True)])
        log = model_changelog(a, b)
        assert [e.kind for e in log.changed] == ["changed"]
        assert not log.added and not log.removed
        # guard untouched: only action-side fields appear in the delta
        assert set(log.changed[0].fields) == {"action.flow", "drops"}

    def test_same_entry_id_across_tables_is_add_plus_remove(self):
        old = _model([_entry(3)], config="*")
        new = _model([_entry(3)], config="state[k] == 1")
        log = model_changelog(old, new)
        assert [(e.kind, e.config, e.entry_id) for e in log.added] == [
            ("added", "state[k] == 1", 3)
        ]
        assert [(e.kind, e.config, e.entry_id) for e in log.removed] == [
            ("removed", "*", 3)
        ]
        assert not log.changed

    def test_json_is_stable_and_sorted(self):
        a = _model([_entry(1), _entry(2, flow="dport == 22")])
        b = _model([_entry(2, flow="dport == 23"), _entry(9, flow="x == 1")])
        first = model_changelog(a, b).to_json()
        second = model_changelog(a, b).to_json()
        assert first == second
        decoded = json.loads(first)
        assert set(decoded) == {"added", "removed", "changed", "name", "unchanged"}

    def test_accepts_json_strings(self):
        a = _model([_entry(1)])
        log = model_changelog(json.dumps(a), json.dumps(a))
        assert log.empty and log.unchanged == 1


# -- the daemon ---------------------------------------------------------------


class TestWatchDaemon:
    def test_parse_target(self, tmp_path):
        t = parse_target(str(tmp_path / "nf.py") + ":h_main")
        assert t.entry == "h_main" and t.name == "nf.h_main"
        t = parse_target(str(tmp_path / "nf.py"))
        assert t.entry is None and t.name == "nf"

    def test_edit_rebuilds_only_the_touched_target(self, tmp_path):
        path = tmp_path / "nf.py"
        path.write_text(MULTI)
        events = []
        with artifact_cache.override(
            directory=str(tmp_path / "cache"), enabled=True
        ):
            daemon = WatchDaemon(
                [
                    parse_target(f"{path}:h_main"),
                    parse_target(f"{path}:h_aux"),
                ],
                WatchOptions(),
                emit=events.append,
            )
            base = daemon.baseline()
            assert [e["event"] for e in base] == ["rebuild", "rebuild"]
            assert all(e["reason"] == "baseline" for e in base)
            assert daemon.poll_once() == []  # quiet poll
            path.write_text(MULTI.replace("> LIMIT", ">= LIMIT"))
            events.clear()
            evs = daemon.poll_once()
            by_name = {e["name"]: e for e in evs}
            assert by_name["nf.h_main"]["event"] == "rebuild"
            assert by_name["nf.h_main"]["changed"] == ["fn:h_main"]
            assert not by_name["nf.h_main"]["cached"]
            assert by_name["nf.h_main"]["tiers"]["model"]["misses"] == 1
            assert by_name["nf.h_aux"]["event"] == "skip"
            assert by_name["nf.h_aux"]["changed"] == ["fn:h_main"]

    def test_rebuild_event_carries_the_diff(self, tmp_path):
        path = tmp_path / "nf.py"
        path.write_text(MULTI)
        with artifact_cache.override(
            directory=str(tmp_path / "cache"), enabled=True
        ):
            daemon = WatchDaemon([parse_target(f"{path}:h_aux")], WatchOptions())
            daemon.baseline()
            path.write_text(MULTI.replace("== 53", "== 99"))
            (event,) = daemon.poll_once()
        assert event["event"] == "rebuild" and event["reason"] == "edit"
        assert event["diff"]["changed"], event
        assert event["diff_summary"]


# -- serve-tier hot-swap ------------------------------------------------------

V1 = '''def handler(pkt):
    if pkt.dport == 80:
        send_packet(pkt)

sniff("eth0", handler)
'''
V2 = V1.replace("== 80", "== 23")


@pytest.fixture(scope="module")
def serve_handle(tmp_path_factory):
    from repro.serve.server import ServeConfig, ServerHandle

    cache_dir = tmp_path_factory.mktemp("shard-cache")
    handle = ServerHandle(
        ServeConfig(port=0, workers=2, cache_dir=str(cache_dir))
    )
    handle.start()
    yield handle
    handle.stop()


class TestHotSwap:
    def test_reload_registers_and_flips_versions(self, serve_handle):
        from repro.serve.client import ServeClient

        client = ServeClient("127.0.0.1", serve_handle.port)
        assert client.wait_until_up()
        first = client.reload("swapnf", V1).raise_for_status().result
        assert first["version"] == 1 and first["updated"]
        again = client.reload("swapnf", V1).raise_for_status().result
        assert again["version"] == 1 and not again["updated"]  # idempotent
        out = client.simulate(
            nf="swapnf", packets=[{"dport": 80}, {"dport": 23}]
        ).raise_for_status().result
        assert out["model_version"] == 1
        assert [o["forwarded"] for o in out["outputs"]] == [True, False]
        flipped = client.reload("swapnf", V2).raise_for_status().result
        assert flipped["version"] == 2 and flipped["updated"]
        out = client.simulate(
            nf="swapnf", packets=[{"dport": 80}, {"dport": 23}]
        ).raise_for_status().result
        assert out["model_version"] == 2
        assert [o["forwarded"] for o in out["outputs"]] == [False, True]
        # satellite: healthz/ServeClient expose the loaded versions
        assert client.models()["swapnf"]["version"] == 2
        health = client.healthz().result
        assert health["models"]["swapnf"]["model_key"] == flipped["model_key"]

    def test_reload_validates_body(self, serve_handle):
        from repro.serve.client import ServeClient

        client = ServeClient("127.0.0.1", serve_handle.port)
        assert client.reload("", V1).status == 400
        response = client.request("POST", "/v1/reload", {"name": "x"})
        assert response.status == 400

    def test_hot_swap_zero_downtime_with_clean_boundary(self, serve_handle):
        """Streams requests through a reload: zero errors, and every
        response's behaviour matches the version it reports, with each
        stream seeing a monotonic old→new version flip."""
        from repro.serve.client import ServeClient, ServeError

        client = ServeClient("127.0.0.1", serve_handle.port)
        assert client.wait_until_up()
        assert client.reload("streamnf", V1).raise_for_status().result[
            "version"
        ] == 1
        # Warm v1 so the streamers start from steady state.
        client.simulate(nf="streamnf", packets=[{"dport": 80}]).raise_for_status()

        errors: list = []
        streams: list = [[] for _ in range(2)]
        stop = threading.Event()

        def stream(bucket):
            worker = ServeClient("127.0.0.1", serve_handle.port)
            while not stop.is_set():
                try:
                    r = worker.simulate(nf="streamnf", packets=[{"dport": 80}])
                except ServeError as exc:  # pragma: no cover - fails the test
                    errors.append(repr(exc))
                    return
                result = r.result or {}
                bucket.append(
                    (
                        r.status,
                        result.get("model_version"),
                        result["outputs"][0]["forwarded"]
                        if r.status == 200
                        else None,
                    )
                )

        threads = [
            threading.Thread(target=stream, args=(bucket,)) for bucket in streams
        ]
        for t in threads:
            t.start()
        time.sleep(0.4)
        flip = client.reload("streamnf", V2).raise_for_status().result
        assert flip["version"] == 2
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline and not all(
            any(v == 2 for _, v, _ in bucket) for bucket in streams
        ):
            time.sleep(0.05)
        stop.set()
        for t in threads:
            t.join(timeout=30.0)

        assert not errors
        all_rows = [row for bucket in streams for row in bucket]
        assert all_rows
        # zero dropped/failed requests across the swap
        assert {status for status, _, _ in all_rows} == {200}
        # behaviour matches the reported version on every response:
        # v1 forwards dport 80, v2 drops it — a torn swap would mismatch
        for status, version, forwarded in all_rows:
            assert forwarded == (version == 1), (status, version, forwarded)
        for bucket in streams:
            versions = [v for _, v, _ in bucket]
            assert versions == sorted(versions)  # clean monotonic boundary
            assert versions[0] == 1 or 1 not in versions
        assert any(2 in [v for _, v, _ in bucket] for bucket in streams)

    def test_watch_daemon_pushes_and_swaps_shard(self, serve_handle, tmp_path):
        """The cluster-aware push path: artifacts peer-fill the shard's
        CAS before the reload flips it."""
        from repro.serve.client import ServeClient

        path = tmp_path / "pushnf.py"
        path.write_text(V1)
        events = []
        with artifact_cache.override(
            directory=str(tmp_path / "daemon-cache"), enabled=True
        ):
            daemon = WatchDaemon(
                [parse_target(str(path))],
                WatchOptions(serve=(("127.0.0.1", serve_handle.port),)),
                emit=events.append,
            )
            (base,) = daemon.baseline()
            assert base["serve"][0]["status"] == 200
            assert base["serve"][0]["version"] == 1
            assert base["serve"][0]["pushed"] >= 4  # frontend/prep/slices/model/sim
            path.write_text(V2)
            (rebuild,) = daemon.poll_once()
            assert rebuild["serve"][0]["version"] == 2
        client = ServeClient("127.0.0.1", serve_handle.port)
        out = client.simulate(
            nf="pushnf", packets=[{"dport": 23}]
        ).raise_for_status().result
        assert out["model_version"] == 2
        assert out["outputs"][0]["forwarded"]
