"""Tests for DAG graph verification (repro.netverify).

The load-bearing properties: verdict bytes are identical across cache
off/cold/warm and sequential-vs-parallel exploration, and after a
single NF edit a warm re-verification recomputes exactly the dirty
region (the edited node and everything downstream).
"""

from __future__ import annotations

import json

import pytest

from repro import cache as artifact_cache
from repro import obs
from repro.apps.verify import HeaderSpace
from repro.netverify import (
    GraphVerifier,
    GraphVerifyConfig,
    ServiceGraph,
    build_graph,
    generate_graph,
)
from repro.netverify.graph import _synthesized
from repro.netverify.verify import (
    EdgeSummary,
    compute_edge_summary,
    edge_key,
    space_fingerprint,
)
from repro.symbolic.solver import Solver

from tests.conftest import synthesize_cached


def _model(name: str):
    return synthesize_cached(name).model


def _quick_graph() -> ServiceGraph:
    """A cheap diamond: monitor -> {ratelimiter, l2switch} -> monitor."""
    g = ServiceGraph()
    g.add_node("A", _model("monitor"))
    g.add_node("B", _model("ratelimiter"))
    g.add_node("C", _model("l2switch"))
    g.add_node("D", _model("monitor"))
    for src, dst in [("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")]:
        g.add_edge(src, dst)
    return g


class TestServiceGraph:
    def test_structure_queries(self):
        g = _quick_graph()
        assert g.sources() == ["A"]
        assert g.sinks() == ["D"]
        assert g.successors("A") == ["B", "C"]
        assert g.predecessors("D") == ["B", "C"]
        assert g.topo_levels() == [["A"], ["B", "C"], ["D"]]
        assert g.n_nodes == 4 and g.n_edges == 4

    def test_duplicate_edge_deduped(self):
        g = _quick_graph()
        g.add_edge("A", "B")
        assert g.n_edges == 4

    def test_rejects_self_loop_and_unknown_nodes(self):
        g = _quick_graph()
        with pytest.raises(ValueError, match="self-loop"):
            g.add_edge("A", "A")
        with pytest.raises(ValueError, match="unknown node"):
            g.add_edge("A", "Z")

    def test_rejects_duplicate_node(self):
        g = _quick_graph()
        with pytest.raises(ValueError, match="duplicate"):
            g.add_node("A", _model("monitor"))

    def test_cycle_detected(self):
        g = ServiceGraph()
        g.add_node("A", _model("monitor"))
        g.add_node("B", _model("monitor"))
        g.add_edge("A", "B")
        g.edges.append(("B", "A"))
        g._succ["B"].append("A")
        g._pred["A"].append("B")
        with pytest.raises(ValueError, match="cycle"):
            g.topo_levels()

    def test_fingerprint_tracks_models_and_wiring(self):
        g1, g2 = _quick_graph(), _quick_graph()
        assert g1.fingerprint() == g2.fingerprint()
        g2.replace_model("B", _model("nat"))
        assert g1.fingerprint() != g2.fingerprint()
        g3 = _quick_graph()
        g3.add_edge("A", "D")
        assert g3.fingerprint() != g1.fingerprint()

    def test_replace_model_preserves_wiring(self):
        g = _quick_graph()
        g.replace_model("B", _model("nat"))
        assert g.successors("B") == ["D"]
        assert g.predecessors("B") == ["A"]
        assert g.nodes["B"].model.name == "nat"

    def test_generate_graph_deterministic(self):
        g1 = generate_graph(10, seed=3, width=4)
        g2 = generate_graph(10, seed=3, width=4)
        assert g1.fingerprint() == g2.fingerprint()
        assert generate_graph(10, seed=4, width=4).fingerprint() != g1.fingerprint()

    def test_build_graph_unknown_nf(self):
        with pytest.raises(ValueError, match="unknown NF"):
            build_graph([("A", "nosuchnf")], [])


class TestEdgeSummary:
    def test_space_fingerprint_ignores_trace(self):
        base = HeaderSpace.universe()
        traced = HeaderSpace(
            fields=dict(base.fields),
            constraints=list(base.constraints),
            trace=[("fw", 3)],
        )
        assert space_fingerprint(base) == space_fingerprint(traced)

    def test_space_fingerprint_sensitive_to_constraints(self):
        base = HeaderSpace.universe()
        from repro.symbolic.expr import mk_app

        narrowed = base.constrained(mk_app("==", base.fields["dport"], 80))
        assert space_fingerprint(base) != space_fingerprint(narrowed)

    def test_summary_apply_reprefixes_trace(self):
        model = _model("monitor")
        solver = Solver()
        base = HeaderSpace.universe()
        summary = compute_edge_summary(model, "X.", base, solver)
        traced = HeaderSpace(
            fields=dict(base.fields), constraints=[], trace=[("up", 1)]
        )
        outs = summary.apply(traced)
        assert outs
        for out in outs:
            assert out.trace[0] == ("up", 1)
            assert out.trace[1][0] == "monitor"

    def test_edge_key_distinguishes_model_and_ns(self):
        space = HeaderSpace.universe()
        k1 = edge_key("m1", "A.", space)
        assert edge_key("m2", "A.", space) != k1
        assert edge_key("m1", "B.", space) != k1
        assert edge_key("m1", "A.", space) == k1

    def test_malformed_store_entry_is_a_miss(self, tmp_path):
        with artifact_cache.override(directory=str(tmp_path), enabled=True):
            g = ServiceGraph()
            g.add_node("A", _model("monitor"))
            key = edge_key(
                g.nodes["A"].model_key, "A.", HeaderSpace.universe()
            )
            artifact_cache.get_store().put_object("edge", key, {"not": "a summary"})
            verdict = GraphVerifier(g).verify()
            assert verdict.stats.cache_misses == 1
            assert verdict.stats.cache_hits == 0


class TestGraphVerifierIdentity:
    def test_byte_identical_across_cache_modes(self, tmp_path):
        with artifact_cache.override(directory=str(tmp_path), enabled=True):
            g = _quick_graph()
            nocache = GraphVerifier(
                g, config=GraphVerifyConfig(use_cache=False)
            ).verify()
            cold = GraphVerifier(g).verify()
            warm = GraphVerifier(g).verify()
            assert nocache.to_json() == cold.to_json() == warm.to_json()
            assert cold.stats.cache_hits == 0
            assert cold.stats.cache_misses == cold.stats.edges
            assert warm.stats.cache_hits == warm.stats.edges
            assert warm.stats.dirty_edges == 0

    def test_parallel_matches_sequential(self, tmp_path):
        with artifact_cache.override(directory=str(tmp_path), enabled=True):
            g = _quick_graph()
            seq = GraphVerifier(
                g, config=GraphVerifyConfig(use_cache=False)
            ).verify()
            par = GraphVerifier(
                g, config=GraphVerifyConfig(use_cache=False, jobs=2)
            ).verify()
            assert seq.to_json() == par.to_json()

    def test_witnesses_are_json_safe_and_stable(self, tmp_path):
        with artifact_cache.override(directory=str(tmp_path), enabled=True):
            g = _quick_graph()
            cold = GraphVerifier(g).verify()
            warm = GraphVerifier(g).verify()
            assert cold.witnesses == warm.witnesses
            json.dumps(cold.witnesses)  # must round-trip
            for witness in cold.witnesses:
                assert witness["sink"] in g.sinks()
                assert witness["trace"]

    def test_matches_linear_network_verifier_semantics(self):
        """A 2-node path graph agrees with NetworkVerifier on verdict."""
        from repro.apps.verify import NetworkVerifier

        fw, nat = synthesize_cached("firewall"), synthesize_cached("nat")
        g = ServiceGraph()
        g.add_node("fw", fw.model)
        g.add_node("nat", nat.model)
        g.add_edge("fw", "nat")
        verdict = GraphVerifier(
            g, config=GraphVerifyConfig(use_cache=False)
        ).verify()
        linear = NetworkVerifier(
            [("firewall", fw.model), ("nat", nat.model)]
        )
        spaces = linear.reachable()
        assert verdict.can_reach == bool(spaces)
        assert verdict.n_spaces == len(spaces)
        assert sorted(tuple(s.trace) for s in verdict.reachable["nat"]) == sorted(
            tuple(s.trace) for s in spaces
        )


class TestDirtyRegion:
    def test_single_edit_recomputes_only_downstream(self, tmp_path):
        with artifact_cache.override(directory=str(tmp_path), enabled=True):
            g = _quick_graph()
            GraphVerifier(g).verify()  # warm every edge
            g.replace_model("B", _model("nat"))
            incr = GraphVerifier(g).verify()
            # The edited B and its downstream D recompute; A and the
            # untouched parallel branch C stay fully warm.  D is mixed:
            # its inputs derived from C still hit (dirtiness is
            # per-edge, not per-node).
            assert set(incr.stats.node_dirty) == {"B", "D"}
            assert {"A", "C"} <= set(incr.stats.node_hits)
            assert "B" not in incr.stats.node_hits
            assert 0 < incr.stats.dirty_edges < incr.stats.edges
            # and the incremental verdict equals a fresh recompute
            fresh = GraphVerifier(
                g, config=GraphVerifyConfig(use_cache=False)
            ).verify()
            assert incr.to_json() == fresh.to_json()

    def test_rewire_dirties_only_new_inputs(self, tmp_path):
        with artifact_cache.override(directory=str(tmp_path), enabled=True):
            g = _quick_graph()
            GraphVerifier(g).verify()
            g.add_edge("A", "D")  # topology rewire: D gains an input
            incr = GraphVerifier(g).verify()
            # only D's *new* inputs (via the A edge) recompute; its old
            # inputs and every other node stay warm
            assert set(incr.stats.node_dirty) == {"D"}
            assert {"A", "B", "C"} <= set(incr.stats.node_hits)
            fresh = GraphVerifier(
                g, config=GraphVerifyConfig(use_cache=False)
            ).verify()
            assert incr.to_json() == fresh.to_json()


class TestObsAndStats:
    def test_counters_threaded_through(self, tmp_path):
        with artifact_cache.override(directory=str(tmp_path), enabled=True):
            g = _quick_graph()
            with obs.observed() as (_tracer, registry):
                GraphVerifier(g).verify()
                GraphVerifier(g).verify()
                counters = registry.snapshot()["counters"]
            edges_per_run = counters["verify.edges"] // 2
            assert counters["verify.cache.misses"] == edges_per_run
            assert counters["verify.cache.hits"] == edges_per_run
            assert counters["verify.dirty_edges"] == edges_per_run

    def test_truncation_counted(self):
        g = _quick_graph()
        config = GraphVerifyConfig(use_cache=False, max_spaces_per_node=1)
        verdict = GraphVerifier(g, config=config).verify()
        assert verdict.stats.truncated_spaces > 0


class TestServeOp:
    def test_op_verify_graph_explicit_nodes(self, tmp_path):
        from repro.serve.jobs import _op_verify_graph

        with artifact_cache.override(directory=str(tmp_path), enabled=True):
            body = {
                "nodes": [["A", "monitor"], ["B", "ratelimiter"]],
                "edges": [["A", "B"]],
            }
            cold = _op_verify_graph(body)
            assert cold["can_reach"] is True
            assert cold["n_nodes"] == 2 and cold["n_edges"] == 1
            assert cold["cache"]["hits"] == 0
            warm = _op_verify_graph(body)
            assert warm["cache"]["hits"] == warm["cache"]["edges"] > 0
            assert warm["graph"] == cold["graph"]
            assert warm["traces"] == cold["traces"]
            assert warm["witnesses"] == cold["witnesses"]
            json.dumps(warm)  # the whole envelope must be JSON-safe

    def test_op_verify_graph_generate(self, tmp_path):
        from repro.serve.jobs import _op_verify_graph

        with artifact_cache.override(directory=str(tmp_path), enabled=True):
            out = _op_verify_graph({"generate": {"n": 4, "seed": 3, "width": 2}})
            assert out["n_nodes"] == 4
            assert out["cache"]["edges"] > 0

    def test_op_verify_graph_bad_requests(self):
        from repro.serve.jobs import _op_verify_graph

        with pytest.raises(ValueError, match="nodes"):
            _op_verify_graph({})
        with pytest.raises(ValueError, match="generate.n"):
            _op_verify_graph({"generate": {"n": 0}})
        with pytest.raises(ValueError, match="unknown NF"):
            _op_verify_graph({"nodes": [["A", "nosuchnf"]], "edges": []})
        with pytest.raises(ValueError, match="unknown node"):
            _op_verify_graph(
                {"nodes": [["A", "monitor"]], "edges": [["A", "Z"]]}
            )

    def test_routing_key_is_graph_shaped(self):
        from repro.serve.router import routing_key

        body1 = {"nodes": [["A", "monitor"]], "edges": []}
        body2 = {"nodes": [["A", "nat"]], "edges": []}
        assert routing_key("verify_graph", body1) == routing_key(
            "verify_graph", body1
        )
        assert routing_key("verify_graph", body1) != routing_key(
            "verify_graph", body2
        )


class TestCli:
    def test_verify_subcommand(self, capsys):
        from repro.cli import main

        code = main(["--no-cache", "verify", "monitor", "ratelimiter"])
        out = capsys.readouterr().out
        assert code == 0
        assert "reachable" in out

    def test_compose_subcommand(self, capsys):
        from repro.cli import main

        code = main(["--no-cache", "compose", "firewall", "nat"])
        out = capsys.readouterr().out
        assert code == 0
        assert "recommended: firewall -> nat" in out

    def test_verify_graph_subcommand(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE", "on")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(
            [
                "verify-graph",
                "--node", "A=monitor", "--node", "B=ratelimiter",
                "--edge", "A:B", "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["can_reach"] is True
        assert payload["stats"]["edges"] > 0

    def test_verify_graph_bad_edge(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["--no-cache", "verify-graph", "--node", "A=monitor",
                  "--edge", "A-B"])
