"""Tests for the model linter (guard disjointness)."""

from __future__ import annotations

import pytest

from repro.model.lint import lint_model
from repro.model.matchaction import NFModel, TableEntry
from repro.net.generator import WorkloadSpec
from repro.nfs import get_nf
from repro.symbolic.expr import SVar, mk_app

DPORT = SVar("pkt.dport", 0, 65535)


def entry(entry_id, flow, sent=True):
    return TableEntry(
        entry_id=entry_id,
        config=[],
        match_flow=list(flow),
        match_state=[],
        action_stmts=[],
        pkt_action_stmts=[],
        state_action_stmts=[],
        sent=[({}, None)] if sent else [],
        path_id=entry_id,
    )


class TestSyntheticModels:
    def test_disjoint_model_is_clean(self):
        model = NFModel(name="t")
        model.add_entry(entry(1, [mk_app("==", DPORT, 80)]))
        model.add_entry(entry(2, [mk_app("!=", DPORT, 80)]))
        report = lint_model(model)
        assert report.clean
        assert report.pairs_checked == 1

    def test_overlap_detected(self):
        model = NFModel(name="t")
        model.add_entry(entry(1, [mk_app("<", DPORT, 100)]))
        model.add_entry(entry(2, [mk_app("<", DPORT, 50)]))
        report = lint_model(model)
        assert not report.clean
        assert (1, 2) in report.overlaps

    def test_empty_guard_flagged(self):
        model = NFModel(name="t")
        model.add_entry(entry(1, []))
        report = lint_model(model)
        assert report.empty_guards == [1]

    def test_pairwise_cap_respected(self):
        model = NFModel(name="t")
        for i in range(10):
            model.add_entry(entry(i, [mk_app("==", DPORT, i)]))
        report = lint_model(model, max_pairwise_entries=4)
        assert report.pairs_checked == 0  # table too large, skipped

    def test_summary(self):
        model = NFModel(name="t")
        model.add_entry(entry(1, [mk_app("==", DPORT, 80)]))
        assert "clean" in lint_model(model).summary()


class TestCorpusModels:
    """Synthesized models come from deterministic programs, so their
    per-config tables must be disjoint."""

    @pytest.mark.parametrize(
        "fixture",
        ["lb_result", "nat_result", "monitor_result", "balance_result"],
    )
    def test_corpus_model_disjoint(self, fixture, request):
        result = request.getfixturevalue(fixture)
        report = lint_model(
            result.model,
            simulator=result.make_simulator(),
            workload=WorkloadSpec(
                n_packets=200,
                seed=5,
                interesting=get_nf(
                    result.model.name.replace("~unfolded", "")
                ).interesting,
            ),
        )
        assert not report.empirical_overlaps, report.summary()

    def test_firewall_empirically_disjoint(self, firewall_result):
        report = lint_model(
            firewall_result.model,
            max_pairwise_entries=0,  # 31 entries: empirical only
            simulator=firewall_result.make_simulator(),
            workload=WorkloadSpec(
                n_packets=300, seed=5, interesting=get_nf("firewall").interesting
            ),
        )
        assert not report.empirical_overlaps, report.summary()
