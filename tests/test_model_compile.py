"""Differential tests for the model compiler (:mod:`repro.model.compile`).

The compiler's contract is byte-identity of outcome with the
interpreted :class:`ModelSimulator`: same matched-entry sequence, same
sent packets, same state evolution, same ``SimStats`` counts for
everything except ``guard_evals`` (which the compiler exists to
reduce).  The main test here is a seeded-random fuzz driving ≥10k
packets per NF through both simulators across the full corpus; the
rest pins the error-path semantics (missing dict keys → no match,
raw-error propagation) and the dispatch/index construction details.
"""

from __future__ import annotations

import copy

import pytest

from tests.conftest import synthesize_cached
from repro.model.compile import (
    CompiledSimulator,
    _best_field,
    _entry_pins,
    compile_model,
)
from repro.model.matchaction import NFModel, TableEntry
from repro.model.simulator import ModelSimulator
from repro.net.generator import TrafficGenerator, WorkloadSpec
from repro.net.packet import Packet
from repro.nfs import get_nf, nf_names
from repro.symbolic.expr import SApp, SDictVal, SVar, mk_app

N_FUZZ_PACKETS = 10_000


def make_entry(entry_id, config=(), flow=(), state=()):
    return TableEntry(
        entry_id=entry_id,
        config=list(config),
        match_flow=list(flow),
        match_state=list(state),
        action_stmts=[],
        pkt_action_stmts=[],
        state_action_stmts=[],
        sent=[],
        path_id=entry_id,
    )


def make_model(*entries):
    model = NFModel(name="t")
    for entry in entries:
        model.add_entry(entry)
    return model


class _RecordingInterp(ModelSimulator):
    """Interpreted simulator recording the matched-entry sequence."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.seq = []

    def match_entry(self, pkt):
        entry = super().match_entry(pkt)
        self.seq.append(None if entry is None else entry.entry_id)
        return entry


class _RecordingCompiled(CompiledSimulator):
    """Compiled simulator recording the matched-entry sequence."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.seq = []

    def _match(self, pkt):
        ce = super()._match(pkt)
        self.seq.append(None if ce is None else ce.entry_id)
        return ce


def _outcome_stats(stats):
    """The SimStats fields the compiler must reproduce exactly."""
    return (
        stats.packets,
        stats.forwarded,
        stats.dropped_default,
        stats.dropped_entry,
        stats.matched_entries,
    )


def _workload(name, n_packets, seed):
    spec = get_nf(name)
    workload = WorkloadSpec(
        n_packets=n_packets, seed=seed, interesting=spec.interesting or {}
    )
    return list(TrafficGenerator(workload).packets())


class TestCorpusDifferentialFuzz:
    """Compiled vs. interpreted over the whole corpus, ≥10k packets each."""

    @pytest.mark.parametrize("name", nf_names())
    def test_compiled_matches_interpreted(self, name):
        result = synthesize_cached(name)
        packets = _workload(name, N_FUZZ_PACKETS, seed=20_260_808)

        interp = _RecordingInterp(
            result.model,
            copy.deepcopy(result.module_env),
            pkt_param=result.pkt_param,
        )
        compiled_model = compile_model(
            result.model, result.module_env, pkt_param=result.pkt_param
        )
        comp = _RecordingCompiled(
            compiled_model, copy.deepcopy(result.module_env)
        )

        for i, pkt in enumerate(packets):
            sent_i = interp.process(pkt.copy())
            sent_c = comp.process(pkt.copy())
            assert sent_i == sent_c, (
                f"{name}: sent packets diverge at packet #{i}: "
                f"{sent_i} vs {sent_c}"
            )
        assert interp.seq == comp.seq, f"{name}: matched-entry sequences diverge"
        assert _outcome_stats(interp.stats) == _outcome_stats(comp.stats)
        assert interp.state == comp.state, f"{name}: end states diverge"
        # The dispatch walk happened for every packet.
        assert comp.stats.compiled_dispatches == len(packets)

    @pytest.mark.parametrize("name", nf_names())
    def test_index_and_dispatch_switches(self, name):
        """use_index / dispatch on-off: all four lowerings agree."""
        result = synthesize_cached(name)
        packets = _workload(name, 1000, seed=99)

        sims = {
            "scan": ModelSimulator(
                result.model,
                copy.deepcopy(result.module_env),
                pkt_param=result.pkt_param,
                use_index=False,
            ),
            "indexed": ModelSimulator(
                result.model,
                copy.deepcopy(result.module_env),
                pkt_param=result.pkt_param,
            ),
            "compiled-flat": compile_model(
                result.model,
                result.module_env,
                pkt_param=result.pkt_param,
                dispatch=False,
            ).simulator(copy.deepcopy(result.module_env)),
            "compiled-tree": compile_model(
                result.model, result.module_env, pkt_param=result.pkt_param
            ).simulator(copy.deepcopy(result.module_env)),
        }
        for pkt in packets:
            outs = {k: sim.process(pkt.copy()) for k, sim in sims.items()}
            assert len({repr(o) for o in outs.values()}) == 1, outs
        baseline = _outcome_stats(sims["scan"].stats)
        for key, sim in sims.items():
            assert _outcome_stats(sim.stats) == baseline, key
            assert sim.state == sims["scan"].state, key

    def test_batch_equals_sequential(self):
        result = synthesize_cached("nat")
        packets = _workload("nat", 2000, seed=5)
        cm = compile_model(
            result.model, result.module_env, pkt_param=result.pkt_param
        )
        seq = cm.simulator(copy.deepcopy(result.module_env))
        bat = cm.simulator(copy.deepcopy(result.module_env))
        one_by_one = [seq.process(p.copy()) for p in packets]
        batched = bat.process_many([p.copy() for p in packets])
        assert one_by_one == batched
        assert _outcome_stats(seq.stats) == _outcome_stats(bat.stats)
        assert seq.stats.guard_evals == bat.stats.guard_evals
        assert seq.state == bat.state

    def test_conservative_lowering_agrees(self):
        """fold_config=False (no pruning, no cfg inlining) is equivalent."""
        result = synthesize_cached("firewall")
        packets = _workload("firewall", 2000, seed=13)
        plain = compile_model(
            result.model,
            result.module_env,
            pkt_param=result.pkt_param,
            fold_config=False,
        )
        folded = compile_model(
            result.model, result.module_env, pkt_param=result.pkt_param
        )
        assert plain.n_pruned == 0
        assert folded.n_live <= plain.n_live
        sim_p = plain.simulator(copy.deepcopy(result.module_env))
        sim_f = folded.simulator(copy.deepcopy(result.module_env))
        for pkt in packets:
            assert sim_p.process(pkt.copy()) == sim_f.process(pkt.copy())
        assert _outcome_stats(sim_p.stats) == _outcome_stats(sim_f.stats)


PKT_DPORT = SVar("pkt.dport", 0, 65535)
PKT_SPORT = SVar("pkt.sport", 0, 65535)
PKT_PROTO = SVar("pkt.proto", 0, 255)
CFG_MODE = SVar("cfg.mode", 0, 3)
ST_X = SVar("st.x", 0, 100)


def _both_sims(model, state, **compile_kwargs):
    interp = ModelSimulator(model, copy.deepcopy(state))
    comp = compile_model(model, state, **compile_kwargs).simulator(
        copy.deepcopy(state)
    )
    return interp, comp


class TestGuardErrorPaths:
    """The interpreter's error taxonomy survives compilation exactly."""

    def test_missing_dict_key_means_no_match(self):
        entry = make_entry(
            1, state=[mk_app("==", SDictVal("tbl", "k", key=PKT_DPORT), 7)]
        )
        interp, comp = _both_sims(make_model(entry), {"tbl": {80: 7}})
        hit, miss = Packet(dport=80), Packet(dport=81)
        for sim in (interp, comp):
            assert sim.match_entry(hit) is entry
            assert sim.match_entry(miss) is None  # GuardEvalError -> no match
            assert sim.process(miss.copy()) == []
        assert interp.stats.dropped_default == comp.stats.dropped_default == 1

    def test_missing_state_variable_means_no_match(self):
        entry = make_entry(1, state=[mk_app("==", ST_X, 1)])
        interp, comp = _both_sims(make_model(entry), {})
        for sim in (interp, comp):
            assert sim.match_entry(Packet()) is None

    def test_failed_op_means_no_match(self):
        # "str" + int raises TypeError inside the op application, which
        # the interpreter converts to GuardEvalError -> guard false.
        entry = make_entry(
            1, state=[SApp("==", (SApp("+", (ST_X, 1)), 2))]
        )
        interp, comp = _both_sims(make_model(entry), {"x": "oops"})
        for sim in (interp, comp):
            assert sim.match_entry(Packet()) is None

    def test_member_on_non_container_raises_raw(self):
        # `key in 5` is a TypeError the interpreter does NOT catch; the
        # compiled guard must propagate it raw, not eat it as no-match.
        entry = make_entry(1, state=[SApp("member", ("tbl", PKT_DPORT))])
        interp, comp = _both_sims(make_model(entry), {"tbl": 5})
        for sim in (interp, comp):
            with pytest.raises(TypeError):
                sim.process(Packet(dport=80))

    def test_dict_value_path_error_raises_raw(self):
        # Presence check passes, then tuple path indexing fails: raw
        # IndexError from both simulators.
        entry = make_entry(
            1,
            state=[
                mk_app(
                    "==", SDictVal("tbl", "k", path=(5,), key=PKT_DPORT), 1
                )
            ],
        )
        interp, comp = _both_sims(make_model(entry), {"tbl": {80: (1, 2)}})
        for sim in (interp, comp):
            with pytest.raises(IndexError):
                sim.process(Packet(dport=80))

    def test_lazy_and_guards_dict_read(self):
        # The classic alias-chain shape: membership test guards the
        # read, so missing keys never error out the conjunct.
        read = mk_app("==", SDictVal("tbl", "k", key=PKT_DPORT), 1)
        guard = SApp("and", (SApp("member", ("tbl", PKT_DPORT)), read))
        entry = make_entry(1, state=[guard])
        interp, comp = _both_sims(make_model(entry), {"tbl": {80: 1}})
        for sim in (interp, comp):
            assert sim.match_entry(Packet(dport=80)) is entry
            assert sim.match_entry(Packet(dport=9)) is None


class TestConfigFolding:
    def test_false_config_prunes_entry(self):
        live = make_entry(1, config=[mk_app("==", CFG_MODE, 1)],
                          flow=[mk_app("==", PKT_DPORT, 80)])
        dead = make_entry(2, config=[mk_app("==", CFG_MODE, 2)],
                          flow=[mk_app("==", PKT_DPORT, 80)])
        model = make_model(live, dead)
        cm = compile_model(model, {"mode": 1})
        assert cm.n_live == 1 and cm.n_pruned == 1
        interp, comp = _both_sims(model, {"mode": 1})
        assert interp.match_entry(Packet(dport=80)) is live
        assert comp.match_entry(Packet(dport=80)) is live

    def test_unevaluable_config_prunes_entry(self):
        # Missing config var -> interpreter guard is always
        # GuardEvalError -> never matches; the compiler prunes it.
        entry = make_entry(1, config=[mk_app("==", SVar("cfg.gone"), 1)])
        cm = compile_model(make_model(entry), {})
        assert cm.n_live == 0 and cm.n_pruned == 1
        interp, comp = _both_sims(make_model(entry), {})
        assert interp.match_entry(Packet()) is None
        assert comp.match_entry(Packet()) is None

    def test_corpus_pruning_is_substantial_on_snortlite(self):
        result = synthesize_cached("snortlite")
        cm = compile_model(
            result.model, result.module_env, pkt_param=result.pkt_param
        )
        assert cm.n_entries == cm.n_live + cm.n_pruned
        assert cm.n_live < cm.n_entries  # config partitions really fold
        assert cm.compile_seconds > 0.0


class TestDispatchTree:
    def test_tie_break_picks_min_name(self):
        coverage = {"sport": 2, "dport": 2, "proto": 1}
        assert _best_field(coverage) == "dport"
        assert _best_field({"a": 1, "b": 1}) is None
        assert _best_field({}) is None

    def test_index_field_tie_break_is_min_name(self):
        # Satellite pin: equal coverage on sport/dport must pick the
        # alphabetically smallest field, deterministically.
        entries = [
            make_entry(1, flow=[mk_app("==", PKT_DPORT, 80),
                                mk_app("==", PKT_SPORT, 1)]),
            make_entry(2, flow=[mk_app("==", PKT_DPORT, 443),
                                mk_app("==", PKT_SPORT, 2)]),
        ]
        sim = ModelSimulator(make_model(*entries), {})
        assert sim.index_field == "dport"
        cm = compile_model(make_model(*entries), {})
        assert cm._root.field == "dport"

    def test_pins_from_and_chains_and_closed_intervals(self):
        entry = make_entry(
            1,
            flow=[
                SApp("and", (
                    SApp("==", (PKT_PROTO, 6)),
                    SApp("<=", (23, PKT_DPORT)),
                    SApp("<=", (PKT_DPORT, 23)),
                )),
            ],
        )
        pins = _entry_pins(entry, {})
        assert pins == {"proto": 6, "dport": 23}

    def test_negated_and_or_arms_do_not_pin(self):
        entry = make_entry(
            1,
            flow=[
                SApp("not", (SApp("==", (PKT_PROTO, 6)),)),
                SApp("or", (SApp("==", (PKT_DPORT, 80)),
                            SApp("==", (PKT_DPORT, 443)))),
            ],
        )
        assert _entry_pins(entry, {}) == {}

    def test_multi_field_dispatch_preserves_priority(self):
        entries = [
            make_entry(1, flow=[mk_app("==", PKT_PROTO, 6),
                                mk_app("==", PKT_DPORT, 80)]),
            make_entry(2, flow=[mk_app("==", PKT_PROTO, 6),
                                mk_app("==", PKT_DPORT, 443)]),
            make_entry(3, flow=[mk_app("==", PKT_PROTO, 17)]),
            make_entry(4, flow=[]),  # residual catch-all
        ]
        model = make_model(*entries)
        interp, comp = _both_sims(model, {})
        for pkt in (
            Packet(proto=6, dport=80),
            Packet(proto=6, dport=443),
            Packet(proto=6, dport=22),
            Packet(proto=17, dport=80),
            Packet(proto=1),
        ):
            a = interp.match_entry(pkt)
            b = comp.match_entry(pkt)
            assert a is b, (pkt, a, b)
        # The catch-all wins only when nothing more specific matches.
        assert comp.match_entry(Packet(proto=1)) is entries[3]


class TestPremergedIndex:
    def test_candidates_is_single_dict_get(self):
        entries = [
            make_entry(1, flow=[mk_app("==", PKT_DPORT, 80)]),
            make_entry(2, flow=[]),
            make_entry(3, flow=[mk_app("==", PKT_DPORT, 443)]),
        ]
        sim = ModelSimulator(make_model(*entries), {})
        assert sim.index_field == "dport"
        # Bucket hit: the premerged list object itself, no per-packet merge.
        got = sim._candidates(Packet(dport=80))
        assert got is sim._merged[80]
        assert [e.entry_id for e in got] == [1, 2]
        assert [e.entry_id for e in sim._candidates(Packet(dport=443))] == [2, 3]
        # Bucket miss: the shared residual list.
        miss = sim._candidates(Packet(dport=9))
        assert miss is sim._residual_entries
        assert [e.entry_id for e in miss] == [2]


class TestServeSimulate:
    def test_compiled_and_interpreted_handlers_agree(self):
        from repro.serve.jobs import _op_simulate

        body = {
            "nf": "firewall",
            "packets": [
                {"proto": 6, "dport": 80, "tcp_flags": 2},
                {"proto": 17, "dport": 53},
                {},
            ],
        }
        fast = _op_simulate(dict(body))
        slow = _op_simulate(dict(body, compile=False))
        assert fast["compiled"] is True
        assert slow["compiled"] is False
        assert fast["outputs"] == slow["outputs"]
        for key in ("packets", "forwarded", "dropped_default", "dropped_entry"):
            assert fast["stats"][key] == slow["stats"][key]
        assert fast["stats"]["compiled_dispatches"] == 3
        assert slow["stats"]["compiled_dispatches"] == 0

    def test_serve_config_escape_hatch_default(self):
        from repro.serve.server import ServeConfig

        assert ServeConfig().compile_sims is True
        assert ServeConfig(compile_sims=False).compile_sims is False
