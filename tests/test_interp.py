"""Interpreter semantics tests, including cross-checks against CPython."""

from __future__ import annotations

import pytest

from repro.interp import Env, Interpreter, NFRuntimeError
from repro.lang.parser import parse_program
from repro.net.packet import Packet

# Pure-Python functions: NFPy is a Python subset, so the interpreter's
# result must equal CPython's on the same source.
PURE_FUNCTIONS = [
    ("def f(a, b):\n    return a + b * 2\n", [(3, 4), (0, 0), (-5, 9)]),
    ("def f(a):\n    return a // 3, a % 3\n", [(10,), (0,), (255,)]),
    ("def f(a):\n    x = 0\n    for i in range(a):\n        x += i\n    return x\n", [(5,), (0,), (12,)]),
    (
        "def f(a):\n    if a > 10:\n        return 'big'\n    elif a > 5:\n        return 'mid'\n    return 'small'\n",
        [(3,), (7,), (20,)],
    ),
    (
        "def f(a):\n    d = {}\n    i = 0\n    while i < a:\n        d[i] = i * i\n        i += 1\n    return d\n",
        [(4,), (0,)],
    ),
    (
        "def f(xs):\n    out = []\n    for x in xs:\n        if x % 2 == 0:\n            out.append(x)\n    return out\n",
        [([1, 2, 3, 4],), ([],)],
    ),
    (
        "def f(a):\n    t = (a, a + 1)\n    x, y = t\n    return y - x\n",
        [(9,)],
    ),
    ("def f(a):\n    return len([a, a]) + max(a, 3) + min(a, 3) + abs(-a)\n", [(7,), (1,)]),
    ("def f(a):\n    return a & 6 | 1 ^ 3 if a else ~a\n", [(5,), (0,)]),
    (
        "def f(a):\n    s = 0\n    i = 0\n    while True:\n        i += 1\n        if i > a:\n            break\n        if i % 2 == 0:\n            continue\n        s += i\n    return s\n",
        [(10,), (1,)],
    ),
    (
        "def f(d):\n    if 'k' in d:\n        del d['k']\n    return sorted(d.keys())\n",
        [({"k": 1, "a": 2},), ({"z": 3},)],
    ),
]


class TestPythonEquivalence:
    @pytest.mark.parametrize("source,arglists", PURE_FUNCTIONS)
    def test_matches_cpython(self, source, arglists):
        namespace: dict = {}
        exec(source, namespace)  # noqa: S102 - trusted test source
        cpython_f = namespace["f"]
        program = parse_program(source)
        for args in arglists:
            import copy

            expected = cpython_f(*copy.deepcopy(list(args)))
            interp = Interpreter(program=program)
            actual = interp.call("f", copy.deepcopy(list(args)))
            assert actual == expected, (source, args)


class TestScoping:
    def test_global_declaration_writes_module_var(self):
        src = "x = 1\ndef f(a):\n    global x\n    x = a\n    return x\n"
        interp = Interpreter(program=parse_program(src))
        interp.run_module()
        assert interp.call("f", [42]) == 42
        assert interp.globals["x"] == 42

    def test_assignment_without_global_is_local(self):
        src = "x = 1\ndef f(a):\n    x = a\n    return x\n"
        interp = Interpreter(program=parse_program(src))
        interp.run_module()
        assert interp.call("f", [42]) == 42
        assert interp.globals["x"] == 1

    def test_mutation_without_global_reaches_module_dict(self):
        src = "d = {}\ndef f(a):\n    d[a] = 1\n    return 0\n"
        interp = Interpreter(program=parse_program(src))
        interp.run_module()
        interp.call("f", [5])
        assert interp.globals["d"] == {5: 1}

    def test_reading_global_without_declaration(self):
        src = "W = 7\ndef f(a):\n    return a * W\n"
        interp = Interpreter(program=parse_program(src))
        interp.run_module()
        assert interp.call("f", [2]) == 14


class TestErrors:
    def test_undefined_name(self):
        interp = Interpreter(program=parse_program("def f(a):\n    return nope\n"))
        with pytest.raises(NFRuntimeError, match="not defined"):
            interp.call("f", [1])

    def test_key_error(self):
        interp = Interpreter(program=parse_program("def f(d):\n    return d[9]\n"))
        with pytest.raises(NFRuntimeError):
            interp.call("f", [{}])

    def test_step_bound_catches_infinite_loop(self):
        src = "def f(a):\n    while True:\n        a += 1\n    return a\n"
        interp = Interpreter(program=parse_program(src), max_steps=1000)
        with pytest.raises(NFRuntimeError, match="exceeded"):
            interp.call("f", [0])

    def test_division_by_zero(self):
        interp = Interpreter(program=parse_program("def f(a):\n    return 1 // a\n"))
        with pytest.raises(NFRuntimeError):
            interp.call("f", [0])

    def test_unpack_mismatch(self):
        interp = Interpreter(program=parse_program("def f(t):\n    a, b = t\n    return a\n"))
        with pytest.raises(NFRuntimeError, match="unpack"):
            interp.call("f", [(1, 2, 3)])

    def test_wrong_arity(self):
        interp = Interpreter(program=parse_program("def f(a, b):\n    return a\n"))
        with pytest.raises(NFRuntimeError, match="takes 2"):
            interp.call("f", [1])

    def test_empty_input_queue(self):
        interp = Interpreter(program=parse_program("def f(a):\n    return recv_packet()\n"))
        with pytest.raises(NFRuntimeError, match="queue"):
            interp.call("f", [0])


class TestPacketIO:
    def test_send_copies_packet(self):
        src = (
            "def cb(pkt):\n"
            "    send_packet(pkt)\n"
            "    pkt.ttl = 1\n"
            "    send_packet(pkt)\n"
        )
        interp = Interpreter(program=parse_program(src, entry="cb"))
        out = interp.process_packet(Packet(ttl=64))
        assert out[0][0].ttl == 64
        assert out[1][0].ttl == 1

    def test_send_with_port(self):
        src = "def cb(pkt):\n    send_packet(pkt, 3)\n"
        interp = Interpreter(program=parse_program(src, entry="cb"))
        out = interp.process_packet(Packet())
        assert out[0][1] == 3

    def test_recv_packet_pops_queue(self):
        src = "def f(a):\n    p = recv_packet()\n    return p.ttl\n"
        interp = Interpreter(program=parse_program(src))
        interp.inputs.append(Packet(ttl=9))
        assert interp.call("f", [0]) == 9

    def test_deterministic_hash_builtin(self):
        src = "def f(a):\n    return hash((a, 1)) % 97\n"
        interp1 = Interpreter(program=parse_program(src))
        interp2 = Interpreter(program=parse_program(src))
        assert interp1.call("f", [5]) == interp2.call("f", [5])

    def test_process_packet_returns_only_new_sends(self):
        src = "def cb(pkt):\n    send_packet(pkt)\n"
        interp = Interpreter(program=parse_program(src, entry="cb"))
        first = interp.process_packet(Packet(ttl=1))
        second = interp.process_packet(Packet(ttl=2))
        assert len(first) == 1 and len(second) == 1
        assert second[0][0].ttl == 2


class TestTracing:
    def test_trace_records_branches(self):
        src = "def f(a):\n    if a > 1:\n        return 1\n    return 0\n"
        interp = Interpreter(program=parse_program(src), trace=True)
        interp.call("f", [5])
        branches = [e for e in interp.trace if e.branch is not None]
        assert branches and branches[0].branch is True

    def test_trace_links_dynamic_defs(self):
        src = "def f(a):\n    x = a\n    y = x\n    return y\n"
        interp = Interpreter(program=parse_program(src), trace=True)
        interp.call("f", [1])
        events = interp.trace.events
        y_event = events[1]
        assert y_event.use_defs["x"] == events[0].index

    def test_trace_ctrl_parent(self):
        src = "def f(a):\n    if a:\n        x = 1\n    return 0\n"
        interp = Interpreter(program=parse_program(src), trace=True)
        interp.call("f", [1])
        events = interp.trace.events
        assert events[1].ctrl == events[0].index
