"""Tests for code-structure normalisation (Fig. 4) and TCP unfolding (Fig. 3/5)."""

from __future__ import annotations

import pytest

from repro.interp import Interpreter
from repro.lang.errors import NFPyError
from repro.lang.parser import parse_program
from repro.net.packet import Packet, TCP_ACK, TCP_FIN, TCP_SYN
from repro.nfactor.tcp_unfold import has_socket_calls, unfold_tcp
from repro.nfactor.transforms import SYNTH_ENTRY, normalize_structure
from repro.nfs import get_nf


class TestNormalizeStructure:
    def test_explicit_entry_untouched(self):
        program = parse_program("def cb(pkt):\n    send_packet(pkt)\n", entry="cb")
        out, report = normalize_structure(program)
        assert report.shape == "explicit"
        assert out.entry == "cb"

    def test_callback_shape(self):
        source = (
            "def handler(pkt):\n    send_packet(pkt)\n"
            "def Main():\n    sniff('eth0', handler)\n"
        )
        out, report = normalize_structure(parse_program(source))
        assert report.shape == "callback"
        assert out.entry == "handler"

    def test_main_loop_shape(self):
        source = (
            "count = 0\n"
            "def Main():\n"
            "    global count\n"
            "    while True:\n"
            "        p = recv_packet()\n"
            "        count += 1\n"
            "        if p.ttl == 0:\n"
            "            continue\n"
            "        send_packet(p)\n"
        )
        out, report = normalize_structure(parse_program(source))
        assert report.shape == "main-loop"
        assert out.entry == SYNTH_ENTRY
        fn = out.functions[SYNTH_ENTRY]
        assert fn.params == ("p",)
        # continue at loop level became return
        interp = Interpreter(program=out)
        interp.run_module()
        assert interp.process_packet(Packet(ttl=0)) == []
        assert len(interp.process_packet(Packet(ttl=9))) == 1
        assert interp.globals["count"] == 2

    def test_main_loop_nested_loop_jumps_kept(self):
        source = (
            "def Main():\n"
            "    while True:\n"
            "        p = recv_packet()\n"
            "        i = 0\n"
            "        while i < 10:\n"
            "            i += 1\n"
            "            if i == 3:\n"
            "                break\n"
            "        p.ttl = i\n"
            "        send_packet(p)\n"
        )
        out, report = normalize_structure(parse_program(source))
        interp = Interpreter(program=out)
        sent = interp.process_packet(Packet())
        assert sent[0][0].ttl == 3

    def test_consumer_producer_shape(self):
        source = (
            "queue = []\n"
            "def ReadLp():\n"
            "    while True:\n"
            "        p = recv_packet()\n"
            "        queue.append(p)\n"
            "def ProcLp():\n"
            "    while True:\n"
            "        pkt = queue.pop(0)\n"
            "        send_packet(pkt)\n"
        )
        out, report = normalize_structure(parse_program(source))
        assert report.shape == "consumer-producer"
        interp = Interpreter(program=out)
        interp.run_module()
        assert len(interp.process_packet(Packet())) == 1

    def test_unrecognised_structure_raises(self):
        with pytest.raises(NFPyError, match="entry"):
            normalize_structure(parse_program("x = 1\ndef f(a):\n    return a\n"))


class TestTcpUnfold:
    def test_detection(self):
        spec = get_nf("balance")
        assert has_socket_calls(parse_program(spec.source))
        assert not has_socket_calls(parse_program(get_nf("loadbalancer").source))

    def test_unfold_produces_parseable_program(self):
        spec = get_nf("balance")
        unfolded = unfold_tcp(parse_program(spec.source))
        assert unfolded.entry == "__per_packet"
        assert "__tcp_conns" in unfolded.source
        assert not has_socket_calls(unfolded)

    def test_unfolded_handshake_semantics(self):
        """The hidden TCP state becomes explicit: data before the
        handshake is dropped; established data is relayed to a backend."""
        spec = get_nf("balance")
        unfolded = unfold_tcp(parse_program(spec.source))
        interp = Interpreter(program=unfolded)
        interp.run_module()

        data = Packet(ip_src=1, sport=2000, ip_dst=9, dport=8080, tcp_flags=TCP_ACK)
        assert interp.process_packet(data.copy()) == []  # no handshake yet

        syn = Packet(ip_src=1, sport=2000, ip_dst=9, dport=8080, tcp_flags=TCP_SYN)
        assert interp.process_packet(syn) == []  # handshake handled locally

        ack = Packet(ip_src=1, sport=2000, ip_dst=9, dport=8080, tcp_flags=TCP_ACK)
        assert interp.process_packet(ack) == []  # completes handshake

        sent = interp.process_packet(data.copy())
        assert len(sent) == 1
        out = sent[0][0]
        assert out.ip_dst == 16843009  # first backend (round robin)
        assert out.dport == 80

    def test_round_robin_state_advances(self):
        spec = get_nf("balance")
        unfolded = unfold_tcp(parse_program(spec.source))
        interp = Interpreter(program=unfolded)
        interp.run_module()
        for i, expected_idx in [(0, 1), (1, 2), (2, 0)]:
            syn = Packet(ip_src=10 + i, sport=2000, ip_dst=9, dport=8080, tcp_flags=TCP_SYN)
            interp.process_packet(syn)
            assert interp.globals["rr_idx"] == expected_idx

    def test_fin_tears_down(self):
        spec = get_nf("balance")
        unfolded = unfold_tcp(parse_program(spec.source))
        interp = Interpreter(program=unfolded)
        interp.run_module()
        flow = dict(ip_src=1, sport=2000, ip_dst=9, dport=8080)
        interp.process_packet(Packet(tcp_flags=TCP_SYN, **flow))
        interp.process_packet(Packet(tcp_flags=TCP_ACK, **flow))
        assert len(interp.process_packet(Packet(tcp_flags=TCP_ACK, **flow))) == 1
        interp.process_packet(Packet(tcp_flags=TCP_FIN | TCP_ACK, **flow))
        # connection gone: data is dropped again
        assert interp.process_packet(Packet(tcp_flags=TCP_ACK, **flow)) == []

    def test_non_listen_port_dropped(self):
        spec = get_nf("balance")
        unfolded = unfold_tcp(parse_program(spec.source))
        interp = Interpreter(program=unfolded)
        interp.run_module()
        other = Packet(ip_src=1, sport=2000, ip_dst=9, dport=443, tcp_flags=TCP_SYN)
        assert interp.process_packet(other) == []

    def test_unsupported_shape_raises(self):
        source = (
            "def Main():\n"
            "    while True:\n"
            "        c = tcp_accept(80)\n"
        )
        with pytest.raises(NFPyError, match="unfold"):
            unfold_tcp(parse_program(source))


class TestBalanceModel:
    """The Figure-6 check: the synthesized balance model exposes the
    round-robin index state and the per-mode tables."""

    def test_mode_tables_exist(self, balance_result):
        model = balance_result.model
        configs = set(model.tables)
        assert len(configs) >= 2  # RR table and hash table (+ shared)

    def test_rr_entry_updates_index(self, balance_result):
        """Fig. 6, RR row: state match on idx, state action (idx+1)%N."""
        from repro.lang.pretty import pretty_stmt

        rr_entries = [
            e
            for e in balance_result.model.all_entries()
            if any("rr_idx" in pretty_stmt(s) for s in e.state_action_stmts)
        ]
        assert rr_entries
        texts = [pretty_stmt(s) for e in rr_entries for s in e.state_action_stmts]
        assert any("% len(servers)" in t for t in texts)

    def test_hash_entry_has_no_index_state(self, balance_result):
        """Fig. 6, HASH row: backend by hash, no idx state transition."""
        from repro.lang.pretty import pretty_stmt

        hash_entries = [
            e
            for e in balance_result.model.all_entries()
            if any("hash" in pretty_stmt(s) for s in e.state_action_stmts)
        ]
        assert hash_entries
        for entry in hash_entries:
            texts = [pretty_stmt(s) for s in entry.state_action_stmts]
            assert not any("rr_idx =" in t for t in texts)
