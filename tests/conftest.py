"""Shared fixtures: parsed corpus programs and cached syntheses.

Synthesis of the larger corpus NFs (snortlite in particular) is
expensive, so results are computed once per session and shared.
"""

from __future__ import annotations

import pytest

from repro.nfactor.algorithm import NFactor, NFactorConfig, SynthesisResult
from repro.nfs import get_nf
from repro.symbolic.engine import EngineConfig

_CACHE: dict = {}


@pytest.fixture(autouse=True)
def _isolated_artifact_cache(monkeypatch, tmp_path):
    """Keep tests off the user's persistent artifact cache.

    The artifact store (repro.cache) defaults to ``~/.cache/repro`` and
    is deliberately cross-process, which would let one test run warm
    the next and skew determinism/counter assertions.  Tests run with
    the store disabled by default; tests that exercise it opt back in
    with ``repro.cache.configure(...)`` / ``override(...)`` (explicit
    overrides beat these env vars) against their own tmp directory.
    Worker subprocesses inherit the env, so batch tests are covered too.
    """
    monkeypatch.setenv("REPRO_CACHE", "off")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "artifact-cache"))
    yield


def synthesize_cached(name: str) -> SynthesisResult:
    """Synthesize an NF model once per test session.

    ``artifact_cache=False`` directly (not just via the env fixture):
    session-scoped fixtures instantiate *before* function-scoped
    autouse fixtures, so the env vars above aren't in force yet, and a
    warm user cache would skip the very phases whose stats the tests
    assert on.
    """
    if name not in _CACHE:
        spec = get_nf(name)
        config = NFactorConfig(
            engine=EngineConfig(max_paths=16384), artifact_cache=False
        )
        _CACHE[name] = NFactor(spec.source, name=name, config=config).synthesize()
    return _CACHE[name]


@pytest.fixture(scope="session")
def lb_result() -> SynthesisResult:
    return synthesize_cached("loadbalancer")


@pytest.fixture(scope="session")
def nat_result() -> SynthesisResult:
    return synthesize_cached("nat")


@pytest.fixture(scope="session")
def firewall_result() -> SynthesisResult:
    return synthesize_cached("firewall")


@pytest.fixture(scope="session")
def monitor_result() -> SynthesisResult:
    return synthesize_cached("monitor")


@pytest.fixture(scope="session")
def balance_result() -> SynthesisResult:
    return synthesize_cached("balance")


@pytest.fixture(scope="session")
def snortlite_result() -> SynthesisResult:
    return synthesize_cached("snortlite")
