"""Shared fixtures: parsed corpus programs and cached syntheses.

Synthesis of the larger corpus NFs (snortlite in particular) is
expensive, so results are computed once per session and shared.
"""

from __future__ import annotations

import pytest

from repro.nfactor.algorithm import NFactor, NFactorConfig, SynthesisResult
from repro.nfs import get_nf
from repro.symbolic.engine import EngineConfig

_CACHE: dict = {}


def synthesize_cached(name: str) -> SynthesisResult:
    """Synthesize an NF model once per test session."""
    if name not in _CACHE:
        spec = get_nf(name)
        config = NFactorConfig(engine=EngineConfig(max_paths=16384))
        _CACHE[name] = NFactor(spec.source, name=name, config=config).synthesize()
    return _CACHE[name]


@pytest.fixture(scope="session")
def lb_result() -> SynthesisResult:
    return synthesize_cached("loadbalancer")


@pytest.fixture(scope="session")
def nat_result() -> SynthesisResult:
    return synthesize_cached("nat")


@pytest.fixture(scope="session")
def firewall_result() -> SynthesisResult:
    return synthesize_cached("firewall")


@pytest.fixture(scope="session")
def monitor_result() -> SynthesisResult:
    return synthesize_cached("monitor")


@pytest.fixture(scope="session")
def balance_result() -> SynthesisResult:
    return synthesize_cached("balance")


@pytest.fixture(scope="session")
def snortlite_result() -> SynthesisResult:
    return synthesize_cached("snortlite")
