"""Tests for pcap import/export."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.generator import TrafficGenerator, WorkloadSpec
from repro.net.packet import FIELD_DOMAINS, Packet, PROTO_TCP, PROTO_UDP
from repro.net.pcap import (
    PCAP_MAGIC,
    packet_from_bytes,
    packet_to_bytes,
    read_pcap,
    write_pcap,
)

#: Fields that survive the wire encoding (in_port/length are host-side).
WIRE_FIELDS = [
    "eth_src", "eth_dst", "eth_type", "ip_src", "ip_dst", "proto", "ttl",
    "sport", "dport", "tcp_flags", "tcp_seq", "tcp_ack",
    "payload_sig", "payload_len",
]


class TestFrameRoundtrip:
    def test_tcp_roundtrip(self):
        pkt = Packet(
            eth_src=0xAABBCCDDEEFF, eth_dst=0x112233445566,
            ip_src=167772161, ip_dst=3232235777, sport=443, dport=55555,
            tcp_flags=18, tcp_seq=12345, tcp_ack=67890,
            payload_sig=0xDEADBEEF, payload_len=1400,
        )
        back = packet_from_bytes(packet_to_bytes(pkt))
        for name in WIRE_FIELDS:
            assert getattr(back, name) == getattr(pkt, name), name

    def test_udp_roundtrip(self):
        pkt = Packet(proto=PROTO_UDP, sport=53, dport=1234, payload_sig=7)
        back = packet_from_bytes(packet_to_bytes(pkt))
        assert back.proto == PROTO_UDP
        assert (back.sport, back.dport) == (53, 1234)
        assert back.payload_sig == 7

    def test_icmp_roundtrip(self):
        pkt = Packet(proto=1, ip_src=5, ip_dst=6)
        back = packet_from_bytes(packet_to_bytes(pkt))
        assert back.proto == 1
        assert (back.ip_src, back.ip_dst) == (5, 6)

    def test_short_frame_rejected(self):
        with pytest.raises(ValueError):
            packet_from_bytes(b"short")

    @settings(max_examples=40, deadline=None)
    @given(
        st.fixed_dictionaries(
            {
                name: st.integers(*FIELD_DOMAINS[name])
                for name in WIRE_FIELDS
                if name not in ("proto", "eth_type")
            }
        ),
        st.sampled_from([PROTO_TCP, PROTO_UDP]),
    )
    def test_roundtrip_property(self, fields, proto):
        pkt = Packet(proto=proto, **fields)
        back = packet_from_bytes(packet_to_bytes(pkt))
        for name in WIRE_FIELDS:
            if name in ("tcp_flags", "tcp_seq", "tcp_ack") and proto != PROTO_TCP:
                continue
            assert getattr(back, name) == getattr(pkt, name), name


class TestFileRoundtrip:
    def test_write_read(self, tmp_path):
        path = tmp_path / "w.pcap"
        pkts = list(TrafficGenerator(WorkloadSpec(n_packets=40, seed=3)).packets())
        assert write_pcap(path, pkts) == len(pkts)
        back = read_pcap(path)
        assert len(back) == len(pkts)
        for a, b in zip(pkts, back):
            for name in WIRE_FIELDS:
                if name.startswith("tcp_") and a.proto != PROTO_TCP:
                    continue
                if name in ("sport", "dport") and a.proto not in (
                    PROTO_TCP, PROTO_UDP
                ):
                    continue  # no L4 header on the wire for other protos
                assert getattr(a, name) == getattr(b, name)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "e.pcap"
        assert write_pcap(path, []) == 0
        assert read_pcap(path) == []

    def test_magic_validated(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(struct.pack("<IHHiIII", 0x12345678, 2, 4, 0, 0, 65535, 1))
        with pytest.raises(ValueError, match="magic"):
            read_pcap(path)

    def test_truncated_record_detected(self, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(path, [Packet()])
        data = path.read_bytes()
        path.write_bytes(data[:-4])
        with pytest.raises(ValueError, match="truncated"):
            read_pcap(path)

    def test_replayable_against_nf(self, tmp_path, monitor_result):
        """pcap workloads replay identically through program and model."""
        path = tmp_path / "replay.pcap"
        spec_pkts = list(TrafficGenerator(WorkloadSpec(n_packets=30, seed=4)).packets())
        write_pcap(path, spec_pkts)
        ref = monitor_result.make_reference()
        sim = monitor_result.make_simulator()
        for pkt in read_pcap(path):
            assert ref.process_packet(pkt.copy()) == sim.process(pkt.copy())
