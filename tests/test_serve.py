"""Lifecycle and protocol tests for the ``repro serve`` subsystem.

The production-shape behaviours under test (ISSUE acceptance):

- queue-full bursts get explicit 429 rejections, never hangs;
- a request deadline *really* cancels the job mid-run inside the
  worker (SIGALRM), freeing the worker for the next request;
- SIGTERM-style drain finishes in-flight work before stopping;
- N concurrent clients each get their own correct response.

Integration tests run a real server on an ephemeral port via
:class:`ServerHandle` with 1-2 workers.  The deterministic ``sleep``
op is gated behind ``REPRO_SERVE_TEST_OPS=1`` (set per-test, inherited
by pool workers).
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from contextlib import contextmanager

import pytest

from repro.serve import (
    BoundedRequestQueue,
    QueueClosed,
    QueueFull,
    ServeClient,
    ServeConfig,
    Server,
    ServerHandle,
)
from repro.serve import protocol
from repro.serve.queue import Job


# -- protocol unit tests ------------------------------------------------------


class TestProtocol:
    def test_response_roundtrip(self):
        raw = protocol.json_response(200, protocol.ok_envelope({"x": 1}))
        head, body = raw.split(b"\r\n\r\n", 1)
        assert head.startswith(b"HTTP/1.1 200 ")
        ok, payload = protocol.parse_client_response(200, body)
        assert ok and payload["result"] == {"x": 1}

    def test_error_envelope_codes(self):
        env = protocol.error_envelope(429, "queue full")
        assert env["error"]["code"] == "queue_full"
        assert protocol.error_envelope(504, "x")["error"]["code"] == "deadline_exceeded"

    def test_read_request_rejects_oversized_body(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(
                b"POST /v1/synthesize HTTP/1.1\r\n"
                + f"Content-Length: {protocol.MAX_BODY_BYTES + 1}\r\n\r\n".encode()
            )
            with pytest.raises(protocol.ProtocolError) as err:
                await protocol.read_request(reader)
            assert err.value.status == 413

        asyncio.run(run())

    def test_read_request_parses_query(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(b"GET /metrics?format=json HTTP/1.1\r\n\r\n")
            reader.feed_eof()
            request = await protocol.read_request(reader)
            assert request.path == "/metrics"
            assert request.query == {"format": "json"}

        asyncio.run(run())


# -- queue unit tests ---------------------------------------------------------


def _mk_job(job_id=1, timeout=60.0):
    now = time.monotonic()
    return Job(
        job_id=job_id, op="sleep", payload={}, arrival=now, deadline=now + timeout
    )


class TestBoundedQueue:
    def test_submit_beyond_capacity_raises(self):
        async def run():
            queue = BoundedRequestQueue(2)
            queue.submit(_mk_job(1))
            queue.submit(_mk_job(2))
            with pytest.raises(QueueFull):
                queue.submit(_mk_job(3))
            assert queue.depth == 2

        asyncio.run(run())

    def test_closed_queue_rejects_and_drains(self):
        async def run():
            queue = BoundedRequestQueue(4)
            queue.submit(_mk_job(1))
            queue.close()
            with pytest.raises(QueueClosed):
                queue.submit(_mk_job(2))
            job = await queue.get()
            assert job is not None and job.job_id == 1
            queue.task_done()
            assert await queue.get() is None  # closed + empty
            assert await queue.join(1.0)

        asyncio.run(run())


# -- server unit tests (no sockets) ------------------------------------------


class TestTimeoutClamp:
    def test_default_and_clamp(self):
        server = Server(ServeConfig(default_timeout_s=5, max_timeout_s=10))
        assert server._timeout_for({}) == 5
        assert server._timeout_for({"timeout_s": 3}) == 3
        assert server._timeout_for({"timeout_s": 99}) == 10

    def test_bad_timeouts_rejected(self):
        server = Server(ServeConfig())
        for bad in (0, -1, "nope", None):
            with pytest.raises(protocol.ProtocolError):
                server._timeout_for({"timeout_s": bad})


# -- integration: a real server on an ephemeral port --------------------------


@contextmanager
def serve(monkeypatch, *, workers=1, queue_size=8, test_ops=True, cache=False,
          **config_kwargs):
    if test_ops:
        monkeypatch.setenv("REPRO_SERVE_TEST_OPS", "1")
    if cache:
        # conftest defaults REPRO_CACHE off (with a tmp REPRO_CACHE_DIR);
        # opt this server's workers back in for warm-path tests.
        monkeypatch.setenv("REPRO_CACHE", "1")
    config = ServeConfig(
        port=0, workers=workers, queue_size=queue_size, **config_kwargs
    )
    handle = ServerHandle(config)
    handle.start()
    try:
        yield handle, ServeClient("127.0.0.1", handle.port, timeout=60)
    finally:
        handle.stop()


def _poll(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _sleep_op(client, seconds, timeout_s=None):
    body = {"seconds": seconds}
    if timeout_s is not None:
        body["timeout_s"] = timeout_s
    return client.request("POST", "/v1/sleep", body)


class TestServerLifecycle:
    def test_health_metrics_and_gated_ops(self, monkeypatch):
        with serve(monkeypatch, workers=1, test_ops=False) as (handle, client):
            health = client.healthz().raise_for_status().result
            assert health["status"] == "ok"
            assert health["workers"] == 1
            assert health["queue_capacity"] == 8
            # sleep is refused when the test-op gate is off.
            assert _sleep_op(client, 0.01).status == 400
            assert client.request("GET", "/nope").status == 404
            assert client.request("GET", "/v1/synthesize").status == 405
            snapshot = client.metrics()
            assert snapshot["counters"]["serve.requests_total"] >= 4
            text = client.metrics_text()
            assert "repro_serve_workers 1" in text
            assert "repro_serve_requests_total" in text

    def test_queue_full_burst_rejected_explicitly(self, monkeypatch):
        with serve(monkeypatch, workers=1, queue_size=1) as (handle, client):
            statuses = []
            lock = threading.Lock()

            def fire(seconds):
                response = _sleep_op(client, seconds)
                with lock:
                    statuses.append(response.status)

            health = lambda: client.healthz().result  # noqa: E731
            # Occupy the single worker, then the single queue slot.
            t1 = threading.Thread(target=fire, args=(1.5,))
            t1.start()
            assert _poll(lambda: health()["inflight"] == 1)
            t2 = threading.Thread(target=fire, args=(1.5,))
            t2.start()
            assert _poll(lambda: health()["queue_depth"] == 1)
            # This burst has nowhere to go: explicit 429s, immediately.
            burst = [threading.Thread(target=fire, args=(0.1,)) for _ in range(3)]
            t0 = time.monotonic()
            for t in burst:
                t.start()
            for t in burst:
                t.join(10)
            burst_elapsed = time.monotonic() - t0
            t1.join(15)
            t2.join(15)
            assert sorted(statuses) == [200, 200, 429, 429, 429]
            assert burst_elapsed < 5  # rejected, not queued behind sleepers
            counters = handle.registry.snapshot()["counters"]
            assert counters["serve.rejected_queue_full"] == 3

    def test_deadline_cancels_job_inside_worker(self, monkeypatch):
        with serve(monkeypatch, workers=1) as (handle, client):
            t0 = time.monotonic()
            response = _sleep_op(client, seconds=30, timeout_s=0.4)
            elapsed = time.monotonic() - t0
            assert response.status == 504
            assert response.error_code == "deadline_exceeded"
            assert response.payload["error"]["where"] == "worker"
            assert elapsed < 5  # cancelled, not sat out
            # The worker slot is actually free again.
            t0 = time.monotonic()
            assert _sleep_op(client, 0.01).status == 200
            assert time.monotonic() - t0 < 5
            counters = handle.registry.snapshot()["counters"]
            assert counters["serve.deadline_exceeded"] == 1

    def test_deadline_cancels_mid_synthesis(self, monkeypatch):
        # A real CPU-bound pipeline run (cold snortlite takes several
        # seconds) is interrupted by the worker's alarm, not abandoned.
        with serve(monkeypatch, workers=1, test_ops=False) as (handle, client):
            t0 = time.monotonic()
            response = client.synthesize("snortlite", timeout_s=0.5)
            elapsed = time.monotonic() - t0
            assert response.status == 504
            assert response.payload["error"]["where"] == "worker"
            assert elapsed < 6
            # Worker survived the cancellation and still does real work.
            assert client.synthesize("monitor").raise_for_status().result[
                "name"
            ] == "monitor"

    def test_drain_finishes_inflight_work(self, monkeypatch):
        with serve(monkeypatch, workers=1, drain_timeout_s=30) as (handle, client):
            done = {}

            def fire():
                done["response"] = _sleep_op(client, 1.0)

            worker = threading.Thread(target=fire)
            worker.start()
            assert _poll(lambda: client.healthz().result["inflight"] == 1)
            handle.drain()  # what SIGTERM does
            worker.join(20)
            # The in-flight job ran to completion despite the drain.
            assert done["response"].status == 200
            assert done["response"].result["slept_s"] == 1.0
            # And the server is actually gone: new connections fail.
            assert _poll(
                lambda: not ServeClient(
                    "127.0.0.1", handle.port, timeout=1
                ).wait_until_up(timeout=0.2, interval=0.05)
            )
            counters = handle.registry.snapshot()["counters"]
            assert counters["serve.drains"] == 1
            assert "serve.drain_timeouts" not in counters

    def test_concurrent_clients_get_their_own_answers(self, monkeypatch):
        with serve(monkeypatch, workers=2, cache=True) as (handle, client):
            results = {}
            lock = threading.Lock()

            def fire(i):
                packets = [
                    {"ip_src": 10 + i, "ip_dst": 20 + i, "dport": 80}
                    for _ in range(i + 1)
                ]
                response = client.simulate(nf="monitor", packets=packets)
                with lock:
                    results[i] = response

            threads = [
                threading.Thread(target=fire, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120)
            assert sorted(results) == list(range(8))
            for i, response in results.items():
                result = response.raise_for_status().result
                assert result["name"] == "monitor"
                # Each client got exactly its own packet batch back.
                assert len(result["outputs"]) == i + 1
                assert result["stats"]["packets"] == i + 1
