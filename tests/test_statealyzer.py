"""Tests for StateAlyzer variable classification (paper Table 1)."""

from __future__ import annotations

from repro.lang.parser import parse_program
from repro.nfactor.algorithm import NFactor
from repro.nfs import get_nf
from repro.pdg.flatten import flatten_program
from repro.pdg.pdg import build_pdg
from repro.slicing.criteria import SliceCriterion
from repro.slicing.static import StaticSlicer
from repro.statealyzer.classify import classify_variables
from repro.statealyzer.features import compute_features


def classify(source: str, entry: str = "cb"):
    program = parse_program(source, entry=entry)
    nf = NFactor(program)
    flat, module_part, entry_part = nf.flatten()
    pdg = build_pdg(flat.block, flat.entry_vars())
    slicer = StaticSlicer(pdg)
    pkt_slice = slicer.backward_many(nf.output_criteria(flat))
    return classify_variables(flat, pkt_slice), flat, pkt_slice


class TestPaperTable1:
    """The exact categorisation the paper's Table 1 lists for the LB."""

    def test_load_balancer_categories(self, lb_result):
        cats = lb_result.categories
        assert cats.pkt_vars == {"pkt"}
        assert "mode" in cats.cfg_vars
        assert "LB_IP" in cats.cfg_vars
        assert {"f2b_nat", "b2f_nat", "rr_idx", "cur_port"} <= cats.ois_vars
        assert {"pass_stat", "drop_stat"} <= cats.log_vars

    def test_no_overlap_between_categories(self, lb_result):
        cats = lb_result.categories
        groups = [cats.pkt_vars, cats.cfg_vars, cats.ois_vars, cats.log_vars]
        for i in range(len(groups)):
            for j in range(i + 1, len(groups)):
                assert not (groups[i] & groups[j])

    def test_category_of(self, lb_result):
        cats = lb_result.categories
        assert cats.category_of("pkt") == "pktVar"
        assert cats.category_of("mode") == "cfgVar"
        assert cats.category_of("rr_idx") == "oisVar"
        assert cats.category_of("pass_stat") == "logVar"
        assert cats.category_of("nonexistent") == "other"

    def test_as_table_layout(self, lb_result):
        table = lb_result.categories.as_table()
        assert set(table) == {"pktVar", "cfgVar", "oisVar", "logVar"}


class TestFeatures:
    SOURCE = (
        "limit = 10\n"      # cfg: read in a condition, never written
        "seen = {}\n"       # ois: stateful, affects forwarding
        "counter = 0\n"     # log: updated, never affects output
        "def cb(pkt):\n"
        "    global counter\n"
        "    counter += 1\n"
        "    if pkt.ttl > limit:\n"
        "        seen[pkt.ip_src] = 1\n"
        "    if pkt.ip_src in seen:\n"
        "        send_packet(pkt)\n"
    )

    def test_persistence(self):
        cats, flat, pkt_slice = classify(self.SOURCE)
        features = cats.features
        assert {"limit", "seen", "counter"} <= features.persistent
        assert "pkt" not in features.persistent

    def test_updateable(self):
        cats, flat, _ = classify(self.SOURCE)
        features = cats.features
        assert "counter" in features.updateable
        assert "seen" in features.updateable
        assert "limit" not in features.updateable

    def test_output_impacting_split(self):
        cats, _, _ = classify(self.SOURCE)
        assert "seen" in cats.ois_vars
        assert "counter" in cats.log_vars

    def test_cfg_var(self):
        cats, _, _ = classify(self.SOURCE)
        assert "limit" in cats.cfg_vars

    def test_recv_packet_binding_is_pkt_var(self):
        source = (
            "def loop():\n"
            "    while True:\n"
            "        p = recv_packet()\n"
            "        send_packet(p)\n"
            "loop()\n"
        )
        program = parse_program(source)
        nf = NFactor(program)
        flat, _, _ = nf.flatten()
        pdg = build_pdg(flat.block, flat.entry_vars())
        pkt_slice = StaticSlicer(pdg).backward_many(nf.output_criteria(flat))
        cats = classify_variables(flat, pkt_slice)
        assert "p" in cats.pkt_vars

    def test_unused_global_not_categorised(self):
        source = (
            "unused = 99\n"
            "def cb(pkt):\n"
            "    send_packet(pkt)\n"
        )
        cats, _, _ = classify(source)
        assert cats.category_of("unused") == "other"


class TestCorpusCategories:
    def test_nat(self, nat_result):
        cats = nat_result.categories
        assert {"out_map", "in_map", "next_port"} <= cats.ois_vars
        assert {"translated_out", "translated_in"} <= cats.log_vars
        assert "EXT_IP" in cats.cfg_vars

    def test_firewall(self, firewall_result):
        cats = firewall_result.categories
        assert "conns" in cats.ois_vars
        assert {"allowed_stat", "blocked_acl"} <= cats.log_vars

    def test_snortlite(self, snortlite_result):
        cats = snortlite_result.categories
        assert {"scan_tracker", "blocked_hosts", "streams"} <= cats.ois_vars
        assert "RULES" in cats.cfg_vars
        assert "alerts" in cats.log_vars
        assert "total_pkts" in cats.log_vars

    def test_monitor_all_log(self, monitor_result):
        cats = monitor_result.categories
        assert cats.ois_vars == set()
        assert {"total_pkts", "web_pkts"} <= cats.log_vars
