"""Unit tests for the path-set comparison machinery."""

from __future__ import annotations

from repro.equiv.paths import compare_path_sets
from repro.symbolic.expr import SVar, mk_app
from repro.symbolic.state import PathResult

TTL = SVar("pkt.ttl", 0, 255)
LEN = SVar("pkt.length", 0, 65535)


def path(pid, constraints, sent=(), status="done"):
    return PathResult(
        path_id=pid,
        status=status,
        constraints=list(constraints),
        executed=[],
        branches=[],
        sent=[(dict(fields), None) for fields in sent],
        state_writes=[],
        env={},
    )


C1 = mk_app(">", TTL, 5)
C2 = mk_app("not", mk_app(">", TTL, 5))
LOG = mk_app("<", LEN, 100)  # a telemetry-only refinement


class TestCompare:
    def test_identical_sets_equal(self):
        a = [path(1, [C1], sent=[{"ttl": TTL}]), path(2, [C2])]
        report = compare_path_sets(a, a)
        assert report.equivalent
        assert report.n_merged == report.n_sliced == 2

    def test_log_refinement_merges(self):
        original = [
            path(1, [C1, LOG], sent=[{"ttl": TTL}]),
            path(2, [C1, mk_app("not", LOG)], sent=[{"ttl": TTL}]),
            path(3, [C2]),
        ]
        sliced = [path(1, [C1], sent=[{"ttl": TTL}]), path(2, [C2])]
        report = compare_path_sets(original, sliced)
        assert report.equivalent
        assert report.n_original == 3 and report.n_merged == 2

    def test_behaviour_conflict_detected(self):
        # two original paths project to the same condition but behave
        # differently — the slice lost a relevant distinction
        original = [
            path(1, [C1, LOG], sent=[{"ttl": TTL}]),
            path(2, [C1, mk_app("not", LOG)]),  # drops instead
        ]
        sliced = [path(1, [C1], sent=[{"ttl": TTL}])]
        report = compare_path_sets(original, sliced)
        assert not report.equivalent
        assert report.behaviour_conflicts

    def test_missing_sliced_path_detected(self):
        original = [path(1, [C1], sent=[{"ttl": TTL}])]
        sliced = [
            path(1, [C1], sent=[{"ttl": TTL}]),
            path(2, [C2]),
        ]
        report = compare_path_sets(original, sliced)
        assert not report.equivalent
        assert report.only_in_sliced

    def test_extra_original_path_detected(self):
        original = [
            path(1, [C1], sent=[{"ttl": TTL}]),
            path(2, [C2]),
        ]
        sliced = [path(1, [C1], sent=[{"ttl": TTL}])]
        report = compare_path_sets(original, sliced)
        assert not report.equivalent
        assert report.only_in_original

    def test_non_done_paths_ignored(self):
        original = [path(1, [C1], sent=[{"ttl": TTL}]), path(2, [C2], status="error")]
        sliced = [path(1, [C1], sent=[{"ttl": TTL}])]
        report = compare_path_sets(original, sliced)
        assert report.equivalent

    def test_send_port_part_of_behaviour(self):
        a = [path(1, [C1], sent=[{"ttl": 1}])]
        b = [path(1, [C1], sent=[{"ttl": 2}])]
        report = compare_path_sets(a, b)
        assert not report.equivalent
