"""Tests for the accuracy experiments (paper §5): differential testing
and path-set equivalence."""

from __future__ import annotations

import pytest

from repro.equiv.differential import differential_test
from repro.equiv.paths import compare_path_sets
from repro.net.generator import WorkloadSpec
from repro.nfs import get_nf
from repro.symbolic.engine import EngineConfig


class TestDifferential:
    @pytest.mark.parametrize(
        "fixture",
        ["lb_result", "nat_result", "firewall_result", "monitor_result", "balance_result"],
    )
    def test_model_equals_program(self, fixture, request):
        result = request.getfixturevalue(fixture)
        spec = get_nf(result.model.name.replace("~unfolded", ""))
        report = differential_test(
            result, n_packets=250, seed=13, interesting=spec.interesting
        )
        assert report.identical, report.summary()
        assert report.n_forwarded_ref == report.n_forwarded_model

    def test_snortlite_model_equals_program(self, snortlite_result):
        spec = get_nf("snortlite")
        report = differential_test(
            snortlite_result, n_packets=250, seed=13, interesting=spec.interesting
        )
        assert report.identical, report.summary()

    def test_report_counts(self, monitor_result):
        report = differential_test(monitor_result, n_packets=50, seed=1)
        assert report.n_packets >= 50
        assert report.n_forwarded_ref == report.n_packets  # monitor forwards all

    def test_seed_changes_workload_not_verdict(self, lb_result):
        spec = get_nf("loadbalancer")
        for seed in (1, 2, 3):
            report = differential_test(
                lb_result, n_packets=120, seed=seed, interesting=spec.interesting
            )
            assert report.identical

    def test_mismatch_reporting_shape(self, monitor_result):
        # Sanity: a deliberately broken simulator state must surface as
        # mismatches with packets attached.
        report = differential_test(monitor_result, n_packets=30, seed=2)
        assert report.mismatches == []
        assert report.summary().endswith("IDENTICAL")


class TestPathSetEquivalence:
    @pytest.mark.parametrize("name", ["loadbalancer", "nat", "monitor", "firewall"])
    def test_original_vs_slice_paths_equal(self, name, request):
        result = request.getfixturevalue(
            {"loadbalancer": "lb_result", "nat": "nat_result",
             "monitor": "monitor_result", "firewall": "firewall_result"}[name]
        )
        from repro.nfactor.algorithm import NFactor

        spec = get_nf(name)
        nf = NFactor(spec.source, name=name)
        original_paths, _ = nf.explore_original(EngineConfig(max_paths=16384))
        report = compare_path_sets(original_paths, result.paths)
        assert report.equivalent, report.summary()
        assert report.n_merged == report.n_sliced

    def test_original_finer_than_slice(self, lb_result):
        """Log branches split original paths; the slice merges them."""
        from repro.nfactor.algorithm import NFactor

        spec = get_nf("loadbalancer")
        nf = NFactor(spec.source, name="loadbalancer")
        original_paths, _ = nf.explore_original()
        n_orig = sum(1 for p in original_paths if p.status == "done")
        n_slice = sum(1 for p in lb_result.paths if p.status == "done")
        assert n_orig >= n_slice

    def test_report_summary_format(self, monitor_result):
        report = compare_path_sets(monitor_result.paths, monitor_result.paths)
        assert "EQUAL" in report.summary()
