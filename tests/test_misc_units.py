"""Focused unit tests for smaller helpers across the library."""

from __future__ import annotations

import pytest

from repro.apps.verify import subst_fields
from repro.cfg.builder import build_cfg
from repro.cfg.graph import ENTRY, EXIT
from repro.interp.builtins import BUILTINS, METHODS
from repro.lang.parser import parse_function, parse_program
from repro.nfactor.refactor import augment_with_jumps, executable_slice, filter_block
from repro.pdg.flatten import flatten_program
from repro.pdg.pdg import build_pdg
from repro.symbolic.expr import SApp, SDictVal, SVar, canon, mk_app


class TestBuiltins:
    def test_hash_is_stable(self):
        assert BUILTINS["hash"]((1, "a")) == BUILTINS["hash"]((1, "a"))

    def test_hash_rejects_mutable(self):
        with pytest.raises(TypeError):
            BUILTINS["hash"]([1])

    def test_range_returns_list(self):
        assert BUILTINS["range"](3) == [0, 1, 2]
        assert BUILTINS["range"](1, 7, 2) == [1, 3, 5]

    def test_method_get_with_default(self):
        assert METHODS["get"]({"a": 1}, "b", 9) == 9

    def test_method_insert_remove_index_count(self):
        xs = [1, 2, 2]
        METHODS["insert"](xs, 0, 0)
        assert xs == [0, 1, 2, 2]
        METHODS["remove"](xs, 2)
        assert xs == [0, 1, 2]
        assert METHODS["index"](xs, 1) == 1
        assert METHODS["count"](xs, 2) == 1

    def test_method_keys_values_are_lists(self):
        d = {"a": 1}
        assert METHODS["keys"](d) == ["a"]
        assert METHODS["values"](d) == [1]


class TestCfgGraph:
    def test_to_dot_renders(self):
        fn = parse_function("def f(a):\n    if a:\n        x = 1\n")
        cfg = build_cfg(fn.body)
        dot = cfg.to_dot()
        assert dot.startswith("digraph") and "->" in dot

    def test_reverse_postorder_starts_at_entry(self):
        fn = parse_function("def f(a):\n    x = a\n    y = x\n")
        cfg = build_cfg(fn.body)
        order = cfg.reverse_postorder()
        assert order[0] == ENTRY
        assert order.index(fn.body[0].sid) < order.index(fn.body[1].sid)

    def test_branch_label_lookup(self):
        fn = parse_function("def f(a):\n    if a:\n        x = 1\n    y = 2\n")
        cfg = build_cfg(fn.body)
        branch = fn.body[0].sid
        then_sid = fn.body[0].then[0].sid
        assert cfg.branch_label(branch, then_sid) is True
        with pytest.raises(KeyError):
            cfg.branch_label(branch, 9999)


class TestRefactorHelpers:
    def _view(self, source):
        flat = flatten_program(parse_program(source, entry="cb"))
        pdg = build_pdg(flat.block, flat.entry_vars())
        return flat, pdg

    def test_filter_block_preserves_structure(self):
        source = (
            "def cb(pkt):\n"
            "    if pkt.ttl > 1:\n"
            "        a = 1\n"
            "        b = 2\n"
            "    send_packet(pkt)\n"
        )
        flat, pdg = self._view(source)
        branch = flat.block[0]
        keep = {branch.sid, branch.then[0].sid}
        out = filter_block(flat.block, keep)
        assert len(out) == 1
        assert len(out[0].then) == 1

    def test_augment_adds_guarded_jump(self):
        source = (
            "def cb(pkt):\n"
            "    if pkt.ttl == 0:\n"
            "        return\n"
            "    send_packet(pkt)\n"
        )
        flat, pdg = self._view(source)
        branch = flat.block[0]
        ret = branch.then[0]
        send = flat.block[1]
        augmented = augment_with_jumps(flat.block, {branch.sid, send.sid}, pdg)
        assert ret.sid in augmented

    def test_augment_skips_unguarded_jump(self):
        source = (
            "def cb(pkt):\n"
            "    if pkt.ttl == 0:\n"
            "        return\n"
            "    send_packet(pkt)\n"
        )
        flat, pdg = self._view(source)
        send = flat.block[1]
        # Without the branch in the slice, the return's control context
        # is incomplete, so it must not be added.
        augmented = augment_with_jumps(flat.block, {send.sid}, pdg)
        ret = flat.block[0].then[0]
        assert ret.sid not in augmented

    def test_executable_slice_returns_kept_set(self):
        source = "def cb(pkt):\n    send_packet(pkt)\n"
        flat, pdg = self._view(source)
        block, kept = executable_slice(flat.block, {flat.block[0].sid}, pdg)
        assert kept == {flat.block[0].sid}
        assert len(block) == 1


class TestSubstFields:
    def test_packet_var_replaced(self):
        from repro.symbolic.solver import Solver

        dport = SVar("pkt.dport", 0, 65535)
        out = subst_fields(mk_app("==", dport, 80), {"dport": 8080})
        # substitution does not fold; the solver refutes the constant clash
        assert Solver().check([out]).status == "unsat"

    def test_namespacing_state(self):
        st = SVar("st.rr_idx", 0, 10)
        out = subst_fields(st, {}, ns="lb#0.")
        assert out.name == "st.lb#0.rr_idx"

    def test_member_atom_key_substituted(self):
        key = (SVar("pkt.ip_src", 0, 100),)
        atom = SApp("member", ("nat", key))
        out = subst_fields(atom, {"ip_src": 42}, ns="x.")
        assert out.args[0] == "x.nat"
        assert out.args[1] == (42,)

    def test_dictval_renamed_and_rekeyed(self):
        key = (SVar("pkt.ip_src", 0, 100),)
        dv = SDictVal("nat", canon(key), (1,), key=key)
        out = subst_fields(dv, {"ip_src": 7}, ns="x.")
        assert out.dict_name == "x.nat"
        assert out.key == (7,)
        assert out.path == (1,)

    def test_untouched_values_pass_through(self):
        assert subst_fields(5, {"dport": 1}) == 5
        assert subst_fields((1, [2]), {}) == (1, [2])


class TestProgramHelpers:
    def test_loc_counts_ir_statements(self):
        program = parse_program("x = 1\n\ndef f(a):\n    return a\n")
        assert program.loc() == 2

    def test_stmt_lookup_by_sid(self):
        program = parse_program("x = 1\ny = 2\n")
        sid = program.module_body[1].sid
        assert program.stmt(sid) is program.module_body[1]

    def test_max_sid(self):
        program = parse_program("x = 1\ny = 2\nz = 3\n")
        assert program.max_sid() == 2

    def test_entry_function_requires_entry(self):
        program = parse_program("x = 1\n")
        with pytest.raises(ValueError):
            _ = program.entry_function
