"""Tests for the propagate-and-sample constraint solver."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.symbolic.expr import SApp, SVar, eval_sym, leaf_key, mk_app
from repro.symbolic.solver import Solver

X = SVar("pkt.x", 0, 1000)
Y = SVar("pkt.y", 0, 1000)
B = SVar("cfg.b", 0, 1, boolean=True)


def check(*constraints):
    return Solver(seed=1).check(list(constraints))


class TestBasics:
    def test_empty_is_sat(self):
        assert check().status == "sat"

    def test_literal_false_unsat(self):
        assert check(False).status == "unsat"
        assert check(True, False).status == "unsat"

    def test_equality_pin(self):
        result = check(mk_app("==", X, 5))
        assert result.status == "sat"
        assert result.assignment[leaf_key(X)] == 5

    def test_contradictory_pins(self):
        assert check(mk_app("==", X, 5), mk_app("==", X, 6)).status == "unsat"

    def test_interval_conflict(self):
        assert check(mk_app("<", X, 5), mk_app(">", X, 10)).status == "unsat"

    def test_interval_tight_fit(self):
        result = check(mk_app(">=", X, 7), mk_app("<=", X, 7))
        assert result.status == "sat"
        assert result.assignment[leaf_key(X)] == 7

    def test_not_equal_excludes(self):
        result = check(
            mk_app(">=", X, 5), mk_app("<=", X, 6), mk_app("!=", X, 5)
        )
        assert result.status == "sat"
        assert result.assignment[leaf_key(X)] == 6

    def test_exhausted_domain_via_exclusions(self):
        assert check(
            mk_app(">=", X, 5),
            mk_app("<=", X, 5),
            mk_app("!=", X, 5),
        ).status == "unsat"

    def test_domain_bounds_respected(self):
        small = SVar("pkt.s", 0, 3)
        assert check(mk_app(">", small, 3)).status == "unsat"

    def test_flipped_operand_order(self):
        result = check(mk_app(">", 10, X))  # 10 > x  ⇒  x < 10
        assert result.status == "sat"
        assert result.assignment[leaf_key(X)] < 10


class TestStructural:
    def test_var_equality_union_find(self):
        result = check(mk_app("==", X, Y), mk_app("==", X, 9))
        assert result.status == "sat"
        assert result.assignment[leaf_key(Y)] == 9

    def test_var_equality_conflict(self):
        assert check(
            mk_app("==", X, Y), mk_app("==", X, 1), mk_app("==", Y, 2)
        ).status == "unsat"

    def test_member_atom_polarity(self):
        atom = SApp("member", ("t", X))
        result = check(atom)
        assert result.status == "sat"
        assert result.assignment[leaf_key(atom)] is True
        assert check(atom, mk_app("not", atom)).status == "unsat"

    def test_complement_of_compound(self):
        compound = mk_app(
            "and", mk_app("!=", mk_app("&", X, 2), 0), mk_app("==", mk_app("&", X, 16), 0)
        )
        assert check(compound, mk_app("not", compound)).status == "unsat"

    def test_conjunction_expansion_propagates(self):
        conj = mk_app("and", mk_app("==", X, 4), mk_app("==", Y, 5))
        result = check(conj)
        assert result.status == "sat"
        assert result.assignment[leaf_key(X)] == 4
        assert result.assignment[leaf_key(Y)] == 5

    def test_demorgan_or(self):
        neg_or = mk_app("not", mk_app("or", mk_app("==", X, 1), mk_app("==", X, 2)))
        result = check(neg_or, mk_app("<=", X, 2), mk_app(">=", X, 1))
        assert result.status == "unsat"

    def test_boolean_var(self):
        result = check(B)
        assert result.status == "sat"
        assert result.assignment[leaf_key(B)] == 1


class TestSampling:
    def test_arith_constraint_found_by_sampling(self):
        result = check(mk_app("==", mk_app("%", X, 7), 3))
        assert result.status == "sat"
        assert result.assignment[leaf_key(X)] % 7 == 3

    def test_hash_constraint(self):
        # hash-based constraints are only solvable by sampling
        result = check(mk_app("==", mk_app("%", mk_app("hash", (X,)), 2), 0))
        assert result.status == "sat"

    def test_unknown_on_hard_constraint(self):
        # Hash preimage of a fixed value: propagation can't and sampling
        # won't find it — must return unknown, never unsat.
        result = Solver(seed=1, max_samples=10).check(
            [mk_app("==", mk_app("hash", (X,)), 123456789)]
        )
        assert result.status == "unknown"
        assert result.feasible  # treated as possibly-sat

    def test_determinism(self):
        constraints = [mk_app(">", mk_app("%", X, 13), 7), mk_app("<", X, 500)]
        a = Solver(seed=3).check(constraints).assignment
        b = Solver(seed=3).check(constraints).assignment
        assert a == b


@st.composite
def simple_constraints(draw):
    """A random satisfiable-ish constraint set over X and Y."""
    out = []
    for var in (X, Y):
        lo = draw(st.integers(0, 900))
        hi = draw(st.integers(lo, 1000))
        out.append(mk_app(">=", var, lo))
        out.append(mk_app("<=", var, hi))
        if draw(st.booleans()):
            out.append(mk_app("!=", var, draw(st.integers(0, 1000))))
    return out


class TestWitnessSoundness:
    @settings(max_examples=50, deadline=None)
    @given(simple_constraints())
    def test_sat_witness_actually_satisfies(self, constraints):
        result = Solver(seed=0).check(constraints)
        assert result.status in ("sat", "unsat")
        if result.status == "sat":
            for c in constraints:
                assert bool(eval_sym(c, result.assignment)) is True

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 1000), st.integers(0, 1000))
    def test_never_unsat_when_witness_exists(self, a, b):
        # x == a ∧ y == b is always satisfiable within domains.
        result = check(mk_app("==", X, a), mk_app("==", Y, b))
        assert result.status == "sat"
