"""Guards for the performance layers (docs/internals.md §7).

Every optimisation in the solver/engine perf stack — constraint
caching, incremental propagation, expression interning, parallel batch
synthesis — claims to be behaviour-preserving.  These tests pin that
claim: identical paths and byte-identical models with the cache
enabled/disabled/warm/cold, incremental checks equal to from-scratch
checks (including across union-find merges), parallel batches equal to
sequential ones, and the supporting machinery (iterative union-find,
metrics merging, pickling of interned expressions).
"""

from __future__ import annotations

import pickle

import pytest

from repro.cli import main as cli_main
from repro.model.serialize import model_to_json
from repro.nfactor.algorithm import NFactor, NFactorConfig
from repro.nfs import get_nf
from repro.obs.metrics import MetricsRegistry
from repro.parallel import BatchTarget, synthesize_many
from repro.symbolic.expr import SApp, SVar, canon, leaf_key, mk_app, sym_vars
from repro.symbolic.engine import EngineConfig
from repro.symbolic.solver import (
    DEFAULT_MAX_SAMPLES,
    ConstraintCache,
    Solver,
    _UnionFind,
    clear_global_cache,
    global_cache,
)

X = SVar("pkt.x", 0, 1000)
Y = SVar("pkt.y", 0, 1000)


def _synthesize(name: str, solver_cache: bool):
    spec = get_nf(name)
    config = NFactorConfig(engine=EngineConfig(solver_cache=solver_cache))
    return NFactor(spec.source, name=name, config=config).synthesize()


def _path_fingerprint(result):
    return [
        (
            p.path_id,
            p.status,
            [canon(c) for c in p.constraints],
            list(p.branches),
        )
        for p in result.paths
    ]


class TestCacheDeterminism:
    """Cache on/off/warm/cold: same paths, byte-identical model."""

    @pytest.mark.parametrize("name", ["nat", "firewall"])
    def test_on_off_warm_cold_identical(self, name):
        clear_global_cache()
        off = _synthesize(name, solver_cache=False)
        cold = _synthesize(name, solver_cache=True)
        warm = _synthesize(name, solver_cache=True)

        assert (
            _path_fingerprint(off)
            == _path_fingerprint(cold)
            == _path_fingerprint(warm)
        )
        assert (
            model_to_json(off.model)
            == model_to_json(cold.model)
            == model_to_json(warm.model)
        )
        # Provenance: the disabled run never touched the cache, the
        # warm run reused the cold run's entries.
        assert off.stats.solver_cache_hits == 0
        assert off.stats.solver_cache_misses == 0
        assert warm.stats.solver_cache_hits > 0
        assert warm.stats.solver_cache_misses == 0

    def test_cached_result_provenance_and_copy(self):
        solver = Solver(seed=1, cache=ConstraintCache())
        constraints = [mk_app("==", X, 5)]
        first = solver.check(constraints)
        second = solver.check(constraints)
        assert not first.cached and second.cached
        assert first.status == second.status == "sat"
        assert first.assignment == second.assignment
        # The hit hands out a copy: mutating it must not poison the cache.
        second.assignment["junk"] = 1
        assert "junk" not in solver.check(constraints).assignment
        assert (solver.cache_hits, solver.cache_misses) == (2, 1)

    def test_cache_lru_bound(self):
        cache = ConstraintCache(maxsize=2)
        solver = Solver(seed=1, cache=cache)
        for bound in (3, 4, 5):
            solver.check([mk_app("==", X, bound)])
        assert len(cache) == 2
        assert solver.check([mk_app("==", X, 5)]).cached  # recent: kept
        assert not solver.check([mk_app("==", X, 3)]).cached  # evicted


class TestIncrementalEquivalence:
    """check_extended over a growing context == check from scratch."""

    def _compare(self, atoms):
        plain = Solver(seed=1, cache=False)
        incr = Solver(seed=1, cache=False)
        ctx = incr.context()
        prefix = []
        for atom in atoms:
            reference = plain.check(prefix + [atom])
            result, ctx = incr.check_extended(prefix, ctx, atom)
            assert result.status == reference.status, canon(atom)
            assert result.assignment == reference.assignment, canon(atom)
            prefix.append(atom)

    def test_interval_narrowing_chain(self):
        self._compare(
            [mk_app(">=", X, 10), mk_app("<=", X, 20), mk_app("!=", X, 10)]
        )

    def test_across_leaf_equality_merge(self):
        # x == y merges union-find classes: per-atom propagation goes
        # inexact and the context must fall back to full re-propagation.
        self._compare(
            [mk_app("==", X, Y), mk_app("<", X, 5), mk_app(">=", Y, 2)]
        )

    def test_unsat_after_merge(self):
        self._compare(
            [mk_app("==", X, Y), mk_app("==", X, 1), mk_app("==", Y, 2)]
        )

    def test_complement_detected_incrementally(self):
        atom = mk_app("<", X, 5)
        self._compare([atom, mk_app("not", atom)])

    def test_fork_contexts_are_independent(self):
        solver = Solver(seed=1, cache=False)
        ctx = solver.context()
        base = [mk_app(">=", X, 10)]
        true_res, true_ctx = solver.check_extended(base, ctx.copy(), mk_app("<", X, 20))
        false_res, _ = solver.check_extended(base, ctx.copy(), mk_app(">=", X, 20))
        assert true_res.status == "sat" and false_res.status == "sat"
        assert true_res.assignment[leaf_key(X)] < 20
        assert false_res.assignment[leaf_key(X)] >= 20
        # The true-arm context keeps only its own atom.
        assert canon(mk_app(">=", X, 20)) not in true_ctx.canon_set


class TestConfigAlignment:
    def test_engine_samples_default_is_solver_default(self):
        assert EngineConfig().solver_samples == DEFAULT_MAX_SAMPLES
        assert Solver().max_samples == DEFAULT_MAX_SAMPLES


class TestUnionFind:
    def test_deep_chain_no_recursion_error(self):
        uf = _UnionFind()
        for i in range(5000):
            uf.union(f"k{i}", f"k{i + 1}")
        assert uf.find("k0") == uf.find("k5000")
        assert uf.merges == 5000

    def test_copy_is_disjoint(self):
        uf = _UnionFind()
        uf.union("a", "b")
        clone = uf.copy()
        clone.union("b", "c")
        assert uf.find("c") == "c"
        assert clone.find("a") == clone.find("c")


class TestInterning:
    def test_canon_memoized_once(self):
        node = mk_app("+", SVar("pkt.z", 0, 9), 1)
        assert canon(node) is canon(node)

    def test_interned_nodes_pickle(self):
        # The leaf-set memo contains the node itself; pickling must
        # strip it or the cycle-through-frozenset is unreconstructible.
        node = mk_app("==", X, Y)
        canon(node)
        sym_vars(node)
        clone = pickle.loads(pickle.dumps(node))
        assert clone == node
        assert canon(clone) == canon(node)


class TestMetricsMerge:
    def test_counters_gauges_histograms(self):
        child = MetricsRegistry()
        child.counter("c").inc(3)
        child.gauge("g").set(7)
        hist = child.histogram("h", buckets=[1, 10])
        hist.observe(0.5)
        hist.observe(5)
        hist.observe(99)

        parent = MetricsRegistry()
        parent.counter("c").inc(2)
        parent.histogram("h", buckets=[1, 10]).observe(5)
        parent.merge(child.snapshot())

        snap = parent.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 7
        merged = snap["histograms"]["h"]
        assert merged["count"] == 4
        assert merged["buckets"] == [[1, 1], [10, 3], [float("inf"), 4]]
        assert merged["min"] == 0.5 and merged["max"] == 99

    def test_mismatched_buckets_rejected(self):
        child = MetricsRegistry()
        child.histogram("h", buckets=[1, 2]).observe(1)
        parent = MetricsRegistry()
        parent.histogram("h", buckets=[1, 3])
        with pytest.raises(ValueError):
            parent.merge(child.snapshot())

    def test_disabled_parent_is_noop(self):
        child = MetricsRegistry()
        child.counter("c").inc()
        parent = MetricsRegistry(enabled=False)
        parent.merge(child.snapshot())  # must not raise or register


class TestParallelBatch:
    NAMES = ["nat", "monitor"]

    def test_parallel_equals_sequential(self):
        seq = synthesize_many(self.NAMES, jobs=1)
        par = synthesize_many(self.NAMES, jobs=2)
        assert [o.name for o in seq] == [o.name for o in par] == self.NAMES
        for s, p in zip(seq, par):
            assert s.ok and p.ok
            assert model_to_json(s.result.model) == model_to_json(p.result.model)

    def test_worker_failure_is_captured(self):
        bad = BatchTarget(name="broken", source="def cb(pkt:\n", entry="cb")
        outcomes = synthesize_many([bad, "monitor"], jobs=2)
        assert not outcomes[0].ok and outcomes[0].error
        assert outcomes[1].ok

    def test_cli_batch_matches_sequential(self, capsys):
        code_seq = cli_main(["batch", "-j", "1", *self.NAMES])
        out_seq = capsys.readouterr().out
        code_par = cli_main(["batch", "-j", "2", *self.NAMES])
        out_par = capsys.readouterr().out
        assert code_seq == code_par == 0

        def stable(text):  # every line minus the wall-clock summary
            return [
                line
                for line in text.splitlines()
                if not line.startswith(tuple(f"{n}/" for n in "0123456789"))
                and "ms" not in line
            ]

        assert stable(out_seq) == stable(out_par)

    def test_metrics_snapshot_travels_home(self):
        # nat branches, so its solver actually runs (monitor is 1-path).
        outcomes = synthesize_many(["nat"], jobs=2, merge_metrics=False)
        (outcome,) = outcomes
        assert outcome.metrics["counters"]["solver.checks"] > 0
