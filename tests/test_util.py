"""Tests for repro.util: deterministic hashing and timing."""

from __future__ import annotations

import time

import pytest
from hypothesis import given, strategies as st

from repro.util.hashing import fnv1a, stable_hash
from repro.util.timer import Stopwatch


class TestFnv1a:
    def test_empty(self):
        assert fnv1a(b"") == 0xCBF29CE484222325

    def test_known_vector(self):
        # FNV-1a 64-bit of "a" (standard test vector)
        assert fnv1a(b"a") == 0xAF63DC4C8601EC8C

    def test_distinct_inputs(self):
        assert fnv1a(b"abc") != fnv1a(b"abd")

    def test_64_bit_range(self):
        for data in (b"", b"x", b"hello world" * 100):
            assert 0 <= fnv1a(data) < (1 << 64)


class TestStableHash:
    def test_int(self):
        assert stable_hash(42) == stable_hash(42)

    def test_type_distinction(self):
        # 1 and True and "1" must hash differently (type-tagged encoding)
        assert stable_hash(1) != stable_hash(True)
        assert stable_hash(1) != stable_hash("1")

    def test_tuple_nesting_distinction(self):
        assert stable_hash((1, (2, 3))) != stable_hash((1, 2, 3))

    def test_none(self):
        assert stable_hash(None) == stable_hash(None)

    def test_rejects_unencodable(self):
        with pytest.raises(TypeError):
            stable_hash([1, 2])

    @given(st.integers(min_value=-(2**63), max_value=2**63))
    def test_deterministic_over_ints(self, value):
        assert stable_hash(value) == stable_hash(value)

    @given(
        st.tuples(st.integers(0, 2**32), st.text(max_size=20), st.booleans())
    )
    def test_deterministic_over_tuples(self, value):
        assert stable_hash(value) == stable_hash(value)

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
    def test_collision_free_enough(self, a, b):
        if a != b:
            assert stable_hash(a) != stable_hash(b)


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert sw.elapsed >= 0.009

    def test_elapsed_ms(self):
        with Stopwatch() as sw:
            pass
        assert sw.elapsed_ms == pytest.approx(sw.elapsed * 1000.0)

    def test_live_elapsed_mid_context(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
            live = sw.elapsed
            assert live >= 0.009  # not 0.0 while still running
            time.sleep(0.005)
            assert sw.elapsed > live  # keeps advancing
        final = sw.elapsed
        assert final >= 0.014
        assert sw.elapsed == final  # frozen after exit

    def test_split_laps(self):
        with Stopwatch() as sw:
            time.sleep(0.005)
            lap1 = sw.split()
            time.sleep(0.005)
            lap2 = sw.split()
        assert lap1 >= 0.004
        assert lap2 >= 0.004
        assert sw.elapsed >= lap1 + lap2

    def test_split_requires_running(self):
        sw = Stopwatch()
        with pytest.raises(RuntimeError):
            sw.split()
        with sw:
            sw.split()
        with pytest.raises(RuntimeError):
            sw.split()
