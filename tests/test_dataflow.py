"""Tests for reaching definitions, liveness and def-use chains."""

from __future__ import annotations

from repro.cfg.builder import build_cfg
from repro.dataflow.defuse import def_use_chains
from repro.dataflow.liveness import live_variables
from repro.dataflow.reaching import INITIAL, reaching_definitions
from repro.lang.parser import parse_function


def analyzed(source: str, entry_vars=None):
    fn = parse_function(source)
    cfg = build_cfg(fn.body)
    stmts = {s.sid: s for s in fn.stmts()}
    return fn, cfg, stmts


class TestReachingDefinitions:
    def test_strong_update_kills(self):
        fn, cfg, stmts = analyzed("def f(a):\n    x = 1\n    x = 2\n    y = x\n")
        s1, s2, s3 = fn.body
        in_facts, _ = reaching_definitions(cfg, stmts, {"a"})
        assert ("x", s1.sid) not in in_facts[s3.sid]
        assert ("x", s2.sid) in in_facts[s3.sid]

    def test_weak_update_preserves(self):
        fn, cfg, stmts = analyzed(
            "def f(a, d):\n    d = {}\n    d[a] = 1\n    y = d\n"
        )
        init, weak, read = fn.body
        in_facts, _ = reaching_definitions(cfg, stmts, {"a", "d"})
        # Both the dict creation and the element store reach the read.
        assert ("d", init.sid) in in_facts[read.sid]
        assert ("d", weak.sid) in in_facts[read.sid]

    def test_branch_merges(self):
        fn, cfg, stmts = analyzed(
            "def f(a):\n    if a:\n        x = 1\n    else:\n        x = 2\n    y = x\n"
        )
        then_def = fn.body[0].then[0]
        else_def = fn.body[0].orelse[0]
        read = fn.body[1]
        in_facts, _ = reaching_definitions(cfg, stmts, {"a"})
        assert ("x", then_def.sid) in in_facts[read.sid]
        assert ("x", else_def.sid) in in_facts[read.sid]

    def test_initial_defs_for_entry_vars(self):
        fn, cfg, stmts = analyzed("def f(a):\n    y = a\n")
        read = fn.body[0]
        in_facts, _ = reaching_definitions(cfg, stmts, {"a"})
        assert ("a", INITIAL) in in_facts[read.sid]

    def test_loop_carried_definition(self):
        fn, cfg, stmts = analyzed(
            "def f(a):\n    x = 0\n    while a:\n        x = x + 1\n        a -= 1\n    return x\n"
        )
        init = fn.body[0]
        loop_def = fn.body[1].body[0]
        ret = fn.body[2]
        in_facts, _ = reaching_definitions(cfg, stmts, {"a"})
        assert ("x", init.sid) in in_facts[ret.sid]
        assert ("x", loop_def.sid) in in_facts[ret.sid]
        # The loop body read sees its own definition from prior iterations.
        assert ("x", loop_def.sid) in in_facts[loop_def.sid]


class TestLiveness:
    def test_dead_store(self):
        fn, cfg, stmts = analyzed("def f(a):\n    x = 1\n    x = 2\n    return x\n")
        s1 = fn.body[0]
        live_out, live_in = live_variables(cfg, stmts)
        assert "x" not in live_out[s1.sid]

    def test_condition_keeps_variable_live(self):
        fn, cfg, stmts = analyzed(
            "def f(a):\n    x = 1\n    if a:\n        return x\n    return 0\n"
        )
        s1 = fn.body[0]
        live_out, _ = live_variables(cfg, stmts)
        assert "x" in live_out[s1.sid]

    def test_live_out_exit_respected(self):
        fn, cfg, stmts = analyzed("def f(a):\n    x = a\n")
        s1 = fn.body[0]
        live_out_without, _ = live_variables(cfg, stmts)
        live_out_with, _ = live_variables(cfg, stmts, {"x"})
        assert "x" not in live_out_without[s1.sid]
        assert "x" in live_out_with[s1.sid]


class TestDefUse:
    def test_simple_chain(self):
        fn, cfg, stmts = analyzed("def f(a):\n    x = a\n    y = x\n")
        s1, s2 = fn.body
        chains = def_use_chains(cfg, stmts, {"a"})
        assert chains.def_sites(s2.sid, "x") == {s1.sid}
        assert chains.data_preds(s2.sid) == {s1.sid}

    def test_initial_excluded_from_data_preds(self):
        fn, cfg, stmts = analyzed("def f(a):\n    y = a\n")
        s1 = fn.body[0]
        chains = def_use_chains(cfg, stmts, {"a"})
        assert chains.data_preds(s1.sid) == set()
        assert INITIAL in chains.def_sites(s1.sid, "a")

    def test_uses_of_def_forward_view(self):
        fn, cfg, stmts = analyzed("def f(a):\n    x = a\n    y = x\n    z = x\n")
        s1, s2, s3 = fn.body
        chains = def_use_chains(cfg, stmts, {"a"})
        uses = {u for u, _ in chains.uses_of_def(s1.sid)}
        assert uses == {s2.sid, s3.sid}

    def test_pseudo_edges_do_not_leak_defs(self):
        # A def before `return` must not reach code after the return
        # through the Ball–Horwitz pseudo edge.
        fn, cfg, stmts = analyzed(
            "def f(a):\n    if a:\n        x = 1\n        return x\n    x = 2\n    return x\n"
        )
        then_def = fn.body[0].then[0]
        tail_ret = fn.body[2]
        chains = def_use_chains(cfg, stmts, {"a"})
        assert then_def.sid not in chains.def_sites(tail_ret.sid, "x")
