"""Tests for the sharded serve cluster (ring, router, peer-fill).

The distributed behaviours under test (ISSUE acceptance):

- consistent-hash routing is sticky (same key → same shard, so that
  shard's caches stay hot) and spreads distinct keys across shards;
- cache peer-fill moves artifacts between shards over ``/cas`` with
  checksum verification on read — a corrupted blob is a logged miss
  (``cache.peer.corrupt``) and a local recompute with an identical
  result, never a wrong answer;
- replica warm-up pre-populates a joining shard from a peer's registry;
- killing a shard mid-load fails its key range over to the next ring
  node (``serve.cluster.failover``) without losing accepted requests.

Integration tests run real servers on ephemeral ports; per-shard
private cache directories make per-shard hit rates meaningful.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager

import pytest

from repro.cache.keys import artifact_key
from repro.cache.store import ArtifactStore, parse_peers
from repro.serve import ServeClient, ServeConfig, ServerHandle
from repro.serve.cluster import ClusterHandle, allocate_ports
from repro.serve.jobs import _LruMemo
from repro.serve.queue import (
    RETRY_AFTER_MAX_S,
    RETRY_AFTER_MIN_S,
    retry_after_jitter,
)
from repro.serve.ring import HashRing
from repro.serve.router import routing_key


# -- consistent hashing -------------------------------------------------------


class TestHashRing:
    def test_lookup_is_stable_and_total(self):
        ring = HashRing(["a:1", "b:2", "c:3"])
        for i in range(200):
            key = f"key-{i}"
            assert ring.node_for(key) == ring.node_for(key)
            assert ring.node_for(key) in {"a:1", "b:2", "c:3"}

    def test_distribution_is_roughly_even(self):
        ring = HashRing([f"s{i}" for i in range(4)])
        share = ring.share(samples=4096)
        assert abs(sum(share.values()) - 1.0) < 1e-9
        for fraction in share.values():
            assert 0.10 < fraction < 0.45, share

    def test_removal_only_moves_the_dead_nodes_keys(self):
        ring = HashRing(["a:1", "b:2", "c:3"])
        before = {f"key-{i}": ring.node_for(f"key-{i}") for i in range(500)}
        ring.remove("b:2")
        for key, owner in before.items():
            after = ring.node_for(key)
            if owner == "b:2":
                assert after != "b:2"
            else:
                assert after == owner, f"{key} moved off a live shard"
        assert "b:2" not in ring

    def test_preference_list_is_distinct_and_owner_first(self):
        ring = HashRing(["a:1", "b:2", "c:3", "d:4"])
        for i in range(50):
            pref = ring.preference(f"key-{i}")
            assert pref[0] == ring.node_for(f"key-{i}")
            assert len(pref) == len(set(pref)) == 4
        assert len(ring.preference("x", n=2)) == 2

    def test_empty_ring(self):
        ring = HashRing()
        assert ring.node_for("anything") is None
        assert ring.preference("anything") == []


class TestRoutingKey:
    def test_same_nf_same_key_across_ops(self):
        # A synthesize and a simulate of one NF share cached artifacts,
        # so they must land on the same shard.
        k1 = routing_key("synthesize", {"nf": "nat"})
        k2 = routing_key("simulate", {"nf": "nat", "packets": [{"p": 1}]})
        k3 = routing_key("testgen", {"nf": "nat", "timeout_s": 5})
        assert k1 == k2 == k3

    def test_distinct_targets_distinct_keys(self):
        keys = {routing_key("synthesize", {"nf": name})
                for name in ("nat", "firewall", "monitor", "l2switch")}
        assert len(keys) == 4

    def test_chain_ops_key_on_the_chain(self):
        k1 = routing_key("verify", {"chain": ["nat", "firewall"]})
        k2 = routing_key("verify", {"chain": ["nat", "firewall"]})
        k3 = routing_key("verify", {"chain": ["firewall", "nat"]})
        assert k1 == k2 != k3

    def test_unroutable_body_still_gets_a_key(self):
        assert routing_key("synthesize", {"source": object()})


# -- satellite: Retry-After jitter -------------------------------------------


class TestRetryAfterJitter:
    def test_bounds(self):
        for _ in range(500):
            value = retry_after_jitter()
            assert RETRY_AFTER_MIN_S <= value <= RETRY_AFTER_MAX_S

    def test_spread(self):
        # Jitter must actually jitter: hundreds of draws should not
        # collapse onto a handful of values (the thundering-herd bug).
        assert len({round(retry_after_jitter(), 3) for _ in range(200)}) > 50

    def test_header_rounding_contract(self):
        value = retry_after_jitter()
        assert max(1, math.ceil(value)) in (1, 2)


# -- satellite: compiled-model memo is LRU ------------------------------------


class TestLruMemo:
    def test_eviction_is_lru_not_fifo(self):
        memo = _LruMemo(2)
        memo.put("hot", 1)
        memo.put("cold", 2)
        assert memo.get("hot") == 1  # refresh: "hot" is now most recent
        memo.put("new", 3)  # evicts "cold" (LRU), not "hot" (FIFO victim)
        assert "hot" in memo and "new" in memo
        assert "cold" not in memo

    def test_steady_traffic_pins_a_hot_model(self):
        memo = _LruMemo(4)
        memo.put("hot", "compiled")
        for i in range(20):  # a parade of one-off models
            memo.get("hot")
            memo.put(f"oneoff-{i}", i)
        assert memo.get("hot") == "compiled"
        assert len(memo) == 4

    def test_put_refresh_and_capacity_floor(self):
        memo = _LruMemo(0)  # clamps to 1
        memo.put("a", 1)
        memo.put("b", 2)
        assert len(memo) == 1 and memo.get("b") == 2
        memo.clear()
        assert len(memo) == 0 and memo.get("b") is None


# -- peer parsing -------------------------------------------------------------


class TestParsePeers:
    def test_tolerates_junk(self):
        assert parse_peers("a:1, b:2,junk,:3,c:nope,,d:0") == (
            ("a", 1), ("b", 2)
        )
        assert parse_peers(None) == ()
        assert parse_peers("") == ()


# -- integration helpers ------------------------------------------------------


@contextmanager
def shard(tmp_path, name, *, peers=(), warmup=False, **kwargs):
    """One shard server with a private cache dir under ``tmp_path``."""
    config = ServeConfig(
        port=0,
        workers=1,
        peers=tuple(peers),
        cache_dir=str(tmp_path / name),
        warmup=warmup,
        **kwargs,
    )
    handle = ServerHandle(config)
    handle.start()
    try:
        yield handle, ServeClient("127.0.0.1", handle.port, timeout=60)
    finally:
        handle.stop()


def _poll(predicate, timeout=15.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _model_sig(response):
    """The model payload of a synthesize response (envelope identity)."""
    import json

    return json.dumps(response.result["model"], sort_keys=True)


# -- CAS endpoints ------------------------------------------------------------


class TestCasEndpoints:
    def test_get_put_roundtrip_and_404(self, tmp_path):
        from repro.serve.peers import fetch_cas_raw, push_cas_raw

        with shard(tmp_path, "a") as (handle, client):
            seed = ArtifactStore(str(tmp_path / "seed"))
            key = artifact_key("model", ("roundtrip",))
            seed.put_object("model", key, {"answer": 42})
            framed = seed.get_raw("model", key)
            assert framed is not None

            assert client.request("GET", f"/cas/model/{key}").status == 404
            assert fetch_cas_raw("127.0.0.1", handle.port, "model", key) is None

            # empty/damaged bodies fail receive-side verification
            assert client.request("PUT", f"/cas/model/{key}").status == 400
            assert not push_cas_raw(
                "127.0.0.1", handle.port, "model", key, b"garbage"
            )

            assert push_cas_raw("127.0.0.1", handle.port, "model", key, framed)
            store = handle.server.cas_store()
            assert store.get_raw("model", key) == framed
            assert store.get_object("model", key) == {"answer": 42}
            assert (
                fetch_cas_raw("127.0.0.1", handle.port, "model", key) == framed
            )
            assert ("model", key) in store.list_objects(kinds=("model",))

    def test_bad_paths_rejected(self, tmp_path):
        with shard(tmp_path, "a") as (_handle, client):
            assert client.request("GET", "/cas/model/NOTHEX").status == 404
            assert client.request("GET", "/cas/../etc/deadbeefdeadbeef").status == 404
            assert client.request("GET", "/registry").status == 200


# -- cache peer-fill ----------------------------------------------------------


class TestPeerFill:
    def _seed(self, tmp_path, name="donor"):
        store = ArtifactStore(str(tmp_path / name))
        key = artifact_key("model", ("peer-fill",))
        store.put_object("model", key, {"model": "payload", "n": 7})
        return key

    def test_miss_fills_from_peer(self, tmp_path):
        key = self._seed(tmp_path)
        with shard(tmp_path, "donor") as (handle, _client):
            taker = ArtifactStore(
                str(tmp_path / "taker"), peers=(("127.0.0.1", handle.port),)
            )
            got = taker.get_object("model", key)
            assert got == {"model": "payload", "n": 7}
            assert taker.counters.get("peer.hits") == 1
            # Filled into the local disk tier: next read never leaves
            # the machine even from a cold process.
            fresh = ArtifactStore(str(tmp_path / "taker"))
            assert fresh.get_object("model", key) == got
            assert not fresh.counters.get("peer.hits")

    def test_unreachable_peer_is_a_logged_miss(self, tmp_path):
        port = allocate_ports(1)[0]  # nothing listens here
        taker = ArtifactStore(
            str(tmp_path / "taker"), peers=(("127.0.0.1", port),),
            peer_timeout_s=0.5,
        )
        key = artifact_key("model", ("absent",))
        assert taker.get_object("model", key) is None
        assert taker.counters.get("peer.errors") == 1
        assert taker.counters.get("peer.misses") == 1

    @pytest.mark.parametrize("damage", ["truncate", "bitflip"])
    def test_corrupt_peer_blob_rejected_and_recomputed(
        self, tmp_path, damage, caplog
    ):
        """The ISSUE satellite: a damaged CAS blob from a peer is caught
        by the fetch-side checksum, logged as ``cache.peer.corrupt``,
        and the caller recomputes locally with an identical result."""
        import logging

        key = self._seed(tmp_path)
        # Damage the donor's on-disk copy; the donor serves the raw
        # bytes unverified (by design), so only the taker can catch it.
        donor = ArtifactStore(str(tmp_path / "donor"))
        path = donor._object_path("model", key)
        raw = path.read_bytes()
        if damage == "truncate":
            path.write_bytes(raw[: len(raw) // 2])
        else:
            flipped = bytearray(raw)
            flipped[-1] ^= 0xFF
            path.write_bytes(bytes(flipped))

        with shard(tmp_path, "donor") as (handle, _client):
            taker = ArtifactStore(
                str(tmp_path / "taker"), peers=(("127.0.0.1", handle.port),)
            )
            with caplog.at_level(logging.WARNING, logger="repro.cache"):
                assert taker.get_object("model", key) is None  # a miss...
            assert taker.counters.get("peer.corrupt") == 1
            assert taker.counters.get("peer.misses") == 1
            assert not taker.counters.get("peer.hits")
            assert any(
                getattr(r, "repro_event", "") == "cache.peer.corrupt"
                for r in caplog.records
            )
            # ...so the caller recomputes and stores locally: identical
            # result, cache changed *when* work happened, never *what*.
            taker.put_object("model", key, {"model": "payload", "n": 7})
            assert taker.get_object("model", key) == {
                "model": "payload", "n": 7
            }

    def test_put_raw_rejects_damage(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "s"))
        key = artifact_key("model", ("push",))
        assert store.put_raw("model", key, b"garbage") is False
        assert store.counters.get("peer.corrupt") == 1
        assert store.get_object("model", key) is None


# -- replica warm-up ----------------------------------------------------------


class TestWarmup:
    def test_joining_shard_pulls_the_peers_registry(self, tmp_path):
        with shard(tmp_path, "a") as (handle_a, client_a):
            client_a.synthesize("nat").raise_for_status()
            donor = ArtifactStore(str(tmp_path / "a"))
            assert _poll(lambda: donor.list_objects(kinds=("model",)), 15)

            with shard(
                tmp_path, "b",
                peers=(("127.0.0.1", handle_a.port),),
                warmup=True,
            ) as (handle_b, client_b):
                joined = ArtifactStore(str(tmp_path / "b"))
                assert _poll(lambda: joined.list_objects(kinds=("model",)), 15), \
                    "warm-up never copied the model artifact"
                assert handle_b.registry.snapshot()["counters"].get(
                    "serve.warmup.artifacts", 0
                ) >= 1
                # The warmed artifact makes B's first request a cache hit.
                response = client_b.synthesize("nat").raise_for_status()
                assert response.result["cached"] is True


# -- the full cluster ---------------------------------------------------------

#: Corpus NFs the integration tests route.  Enough distinct routing
#: keys that two shards are statistically certain to both appear
#: (P[all one shard] ~ 2^-5 per ring layout, and the layout is fixed).
CLUSTER_NFS = ("nat", "firewall", "monitor", "l2switch", "ratelimiter", "balance")


class TestClusterIntegration:
    def test_routing_is_sticky_and_follows_the_ring(self, tmp_path):
        with ClusterHandle(
            shards=2, workers_per_shard=1, cache_root=str(tmp_path)
        ) as cluster:
            client = ServeClient("127.0.0.1", cluster.router_port, timeout=60)
            assert client.wait_until_up(30)
            # The contract: observed placement IS the ring's placement.
            ring = HashRing(
                f"127.0.0.1:{h.port}" for h in cluster.shard_handles
            )
            expected = {
                nf: ring.node_for(routing_key("synthesize", {"nf": nf}))
                for nf in CLUSTER_NFS
            }
            # Pick NFs covering both shards (the ring layout depends on
            # the ephemeral ports, so choose after the fact).
            by_shard = {}
            for nf, owner in expected.items():
                by_shard.setdefault(owner, nf)
            targets = list(by_shard.values())[:2] or CLUSTER_NFS[:1]
            for nf in targets:
                first = client.synthesize(nf).raise_for_status()
                again = client.synthesize(nf).raise_for_status()
                assert first.shard == again.shard == expected[nf], (
                    f"{nf}: router placed on {first.shard}, "
                    f"ring says {expected[nf]}"
                )
                assert again.result["cached"] is True, (
                    f"{nf}: sticky routing must make the repeat a cache hit"
                )
                assert _model_sig(first) == _model_sig(again)
            if len(by_shard) == 2:
                assert len({expected[nf] for nf in targets}) == 2
            client.close()

    def test_cluster_envelope_matches_single_node(self, tmp_path):
        """Envelopes through the router are byte-identical in every
        deterministic field to a single-node server's."""
        with shard(tmp_path, "solo") as (_handle, solo_client):
            solo = solo_client.synthesize("nat").raise_for_status()
        with ClusterHandle(
            shards=2, workers_per_shard=1, cache_root=str(tmp_path / "c")
        ) as cluster:
            client = ServeClient("127.0.0.1", cluster.router_port, timeout=60)
            assert client.wait_until_up(30)
            clustered = client.synthesize("nat").raise_for_status()
            client.close()
        assert _model_sig(solo) == _model_sig(clustered)
        assert solo.result["stats"] == clustered.result["stats"]
        assert set(solo.payload) == set(clustered.payload)

    def test_failover_spills_to_next_ring_node(self, tmp_path):
        # health_interval_s=0: no background probes, so the kill is
        # discovered *by a request* — the deterministic way to observe
        # the per-request failover path and its counter.
        with ClusterHandle(
            shards=2, workers_per_shard=1, cache_root=str(tmp_path),
            health_interval_s=0,
        ) as cluster:
            client = ServeClient("127.0.0.1", cluster.router_port, timeout=60)
            assert client.wait_until_up(30)
            # Map every NF to its shard, pick a victim that serves some.
            owners = {
                nf: client.synthesize(nf).raise_for_status().shard
                for nf in CLUSTER_NFS[:4]
            }
            victim_name = next(iter(set(owners.values())))
            victim_index = [
                i for i, h in enumerate(cluster.shard_handles)
                if f"127.0.0.1:{h.port}" == victim_name
            ][0]

            cluster.kill_shard(victim_index)

            # Every request still answers 200 — the victim's keys spill
            # to the surviving shard; none hang, none are lost.  Two
            # passes: marking a shard down takes down_after consecutive
            # transport failures, and the victim may own only one key.
            for _ in range(2):
                for nf in CLUSTER_NFS[:4]:
                    response = client.synthesize(nf)
                    assert response.status == 200, (
                        f"{nf} failed after shard kill: {response.payload}"
                    )
                    assert response.shard != victim_name
            snapshot = cluster.router_handle.registry.snapshot()["counters"]
            assert snapshot.get("serve.cluster.failover", 0) >= 1
            assert snapshot.get("serve.cluster.shard_down", 0) >= 1
            client.close()


# -- satellite: client keep-alive ---------------------------------------------


class TestClientKeepAlive:
    def test_sequential_requests_reuse_one_connection(self, tmp_path):
        with shard(tmp_path, "a") as (handle, client):
            for _ in range(5):
                client.healthz().raise_for_status()
            connections = handle.registry.snapshot()["counters"].get(
                "serve.connections", 0
            )
            assert connections == 1, (
                f"5 sequential requests opened {connections} connections"
            )
            client.close()

    def test_stale_socket_reconnects_transparently(self, tmp_path):
        with shard(tmp_path, "a") as (handle, client):
            client.healthz().raise_for_status()
            # Yank the kept-alive socket out from under the client (what
            # an idle timeout or restarted server does).
            conn = client._local.conn
            conn.sock.close()
            response = client.healthz()
            assert response.status == 200
            connections = handle.registry.snapshot()["counters"].get(
                "serve.connections", 0
            )
            assert connections == 2
            client.close()

    def test_threads_do_not_share_sockets(self, tmp_path):
        import threading

        with shard(tmp_path, "a") as (_handle, client):
            errors = []

            def hammer():
                try:
                    for _ in range(10):
                        client.healthz().raise_for_status()
                    client.close()
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors


# -- worker deadline plumbing -------------------------------------------------


class TestWorkerDeadline:
    def test_stale_absolute_deadline_fails_fast_in_worker(self):
        # The server stamps an absolute monotonic deadline at dispatch;
        # a job that starts after it has passed must 504 where="worker"
        # immediately, not arm a stale full-length alarm.
        from repro.serve.jobs import run_job

        t0 = time.monotonic()
        out = run_job(("synthesize", {"name": "nat"}, 5.0, None, t0 - 1.0))
        assert out["status"] == 504
        assert out["where"] == "worker"
        assert time.monotonic() - t0 < 1.0

    def test_alarm_ticks_again_after_a_swallowed_timeout(self):
        # A tick that raises into an unraisable context (weakref
        # callback, __del__) is silently dropped by CPython; the
        # interval timer must try again.  Swallowing the first two
        # JobTimeouts here simulates those lost deliveries — a one-shot
        # alarm would never fire a third time.
        from repro.serve.jobs import JobTimeout, _deadline_alarm

        swallowed = 0
        give_up = time.monotonic() + 10.0
        with pytest.raises(JobTimeout):
            with _deadline_alarm(0.05):
                while time.monotonic() < give_up:
                    try:
                        while time.monotonic() < give_up:
                            pass
                    except JobTimeout:
                        swallowed += 1
                        if swallowed >= 3:
                            raise
        assert swallowed == 3


# -- satellite: jittered Retry-After on the wire ------------------------------


class TestBackpressureJitter:
    def test_429_carries_jittered_retry_after(self, tmp_path, monkeypatch):
        import threading

        monkeypatch.setenv("REPRO_SERVE_TEST_OPS", "1")
        with shard(tmp_path, "a", queue_size=1) as (handle, client):
            # One sleep occupies the worker, a second fills the 1-deep
            # queue; every probe after that is an instant 429.  The
            # second holder starts only once the first is inflight —
            # two simultaneous submits can race the dispatcher for the
            # single queue slot and reject one of them.
            def hold() -> None:
                ServeClient("127.0.0.1", handle.port, timeout=30).request(
                    "POST", "/v1/sleep", {"seconds": 6.0}
                )

            holders = [threading.Thread(target=hold) for _ in range(2)]
            holders[0].start()
            assert _poll(
                lambda: (client.healthz().result or {}).get("inflight") == 1,
                timeout=10,
            ), "first sleep never reached the worker"
            holders[1].start()
            try:
                assert _poll(
                    lambda: (client.healthz().result or {}).get(
                        "queue_depth"
                    )
                    == 1,
                    timeout=10,
                ), "never saturated worker + queue"
                hints = []
                for _ in range(8):
                    response = client.request(
                        "POST", "/v1/sleep", {"seconds": 0.01}
                    )
                    if response.status != 429:
                        continue  # a holder finished; enough samples exist
                    assert response.retry_after_s is not None
                    assert (
                        RETRY_AFTER_MIN_S
                        <= response.retry_after_s
                        <= RETRY_AFTER_MAX_S
                    )
                    hints.append(response.retry_after_s)
                assert len(hints) >= 4, "never saw enough 429s"
                assert len(set(hints)) > 1, f"no jitter: {hints}"
            finally:
                for t in holders:
                    t.join()
            client.close()
