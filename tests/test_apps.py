"""Tests for the §4 applications: verification, composition, testing."""

from __future__ import annotations

import pytest

from repro.apps.compose import analyze_chain, compose_chains, match_fields, rewrite_fields
from repro.apps.testing import generate_tests, validate_suite
from repro.apps.verify import (
    HeaderSpace,
    NetworkVerifier,
    check_drop_invariant,
    config_constraints,
    find_forwarding_witness,
    model_check_entries,
)
from repro.symbolic.expr import SApp, SVar, mk_app

DPORT = SVar("pkt.dport", 0, 65535)
PROTO = SVar("pkt.proto", 0, 255)
FLAGS = SVar("pkt.tcp_flags", 0, 31)
IN_PORT = SVar("pkt.in_port", 0, 255)


class TestVerification:
    def test_forwarding_witness_exists(self, lb_result):
        hit = find_forwarding_witness(lb_result.model)
        assert hit is not None
        entry, witness = hit
        assert not entry.drops

    def test_lb_invariant_unsolicited_reverse_dropped(self, lb_result):
        """No packet off the service port of an unknown flow is ever
        forwarded — the property the paper's LB narrative states."""
        not_service = mk_app("!=", DPORT, SVar("cfg.LB_PORT", 0, 65535))
        unknown = SApp("not", (SApp("member", ("b2f_nat", _lb_tuple())),))
        violation = check_drop_invariant(lb_result.model, [not_service, unknown])
        assert violation is None

    def test_firewall_invariant_untrusted_syn_dropped(self, firewall_result):
        """With fresh state and the deployed config, a SYN arriving on
        the untrusted port must not be forwarded."""
        syn_only = mk_app(
            "and",
            mk_app("!=", mk_app("&", FLAGS, 2), 0),
            mk_app("==", mk_app("&", FLAGS, 16), 0),
        )
        constraints = config_constraints(firewall_result) + [
            mk_app("==", PROTO, 6),
            mk_app("!=", IN_PORT, 0),
            syn_only,
        ]
        violation = find_forwarding_witness(
            firewall_result.model, constraints, empty_state=True
        )
        assert violation is None

    def test_firewall_invariant_fails_without_config_pinning(self, firewall_result):
        """The same property is violated under *some* configuration
        (TRUSTED_PORT ≠ 0), demonstrating why verification pins config."""
        syn_only = mk_app(
            "and",
            mk_app("!=", mk_app("&", FLAGS, 2), 0),
            mk_app("==", mk_app("&", FLAGS, 16), 0),
        )
        constraints = [
            mk_app("==", PROTO, 6),
            mk_app("!=", IN_PORT, 0),
            syn_only,
        ]
        violation = find_forwarding_witness(
            firewall_result.model, constraints, empty_state=True
        )
        assert violation is not None

    def test_firewall_trusted_syn_allowed(self, firewall_result):
        syn_only = mk_app(
            "and",
            mk_app("!=", mk_app("&", FLAGS, 2), 0),
            mk_app("==", mk_app("&", FLAGS, 16), 0),
        )
        constraints = config_constraints(firewall_result) + [
            mk_app("==", PROTO, 6),
            mk_app("==", IN_PORT, 0),
            syn_only,
        ]
        hit = find_forwarding_witness(firewall_result.model, constraints)
        assert hit is not None

    def test_chain_reachability(self, firewall_result, lb_result):
        verifier = NetworkVerifier(
            [("fw", firewall_result.model), ("lb", lb_result.model)]
        )
        spaces = verifier.reachable()
        assert spaces  # some packet traverses fw then lb

    def test_chain_narrowed_space_unreachable(self, firewall_result):
        """Non-TCP traffic cannot traverse the firewall as configured
        (STRICT_MODE=1)."""
        verifier = NetworkVerifier([("fw", firewall_result.model)])
        space = HeaderSpace.universe().constrained(
            mk_app("==", PROTO, 17), *config_constraints(firewall_result)
        )
        assert not verifier.can_reach(space)

    def test_chain_transform_composes(self, lb_result):
        """Traffic leaving the LB towards a backend has the LB's
        source address."""
        verifier = NetworkVerifier([("lb", lb_result.model)])
        space = HeaderSpace.universe().constrained(
            mk_app("==", DPORT, SVar("cfg.LB_PORT", 0, 65535))
        )
        out_spaces = verifier.reachable(space)
        assert out_spaces
        assert any(s.fields["ip_src"] == 50529027 for s in out_spaces)

    def test_model_check_entries_counts(self, lb_result):
        n = model_check_entries(lb_result.model)
        assert 0 < n <= lb_result.model.n_entries


class TestComposition:
    def test_lb_rewrites_fields_ids_reads(self, lb_result, snortlite_result):
        assert "ip_dst" in rewrite_fields(lb_result.model)
        assert "dport" in match_fields(snortlite_result.model)

    def test_conflict_detected_in_wrong_order(self, lb_result, snortlite_result):
        analysis = analyze_chain(
            [("lb", lb_result.model), ("ids", snortlite_result.model)]
        )
        assert analysis.n_conflicts > 0

    def test_clean_order_has_no_conflicts(self, lb_result, snortlite_result):
        analysis = analyze_chain(
            [("ids", snortlite_result.model), ("lb", lb_result.model)]
        )
        assert analysis.n_conflicts == 0

    def test_paper_composition_example(
        self, firewall_result, snortlite_result, lb_result
    ):
        """{FW, IDS} + {LB} must compose to {FW, IDS, LB} (paper §4)."""
        ranked = compose_chains(
            [("fw", firewall_result.model), ("ids", snortlite_result.model)],
            [("lb", lb_result.model)],
        )
        best = ranked[0]
        assert best.order == ("fw", "ids", "lb")
        assert best.n_conflicts == 0

    def test_summary_text(self, lb_result, monitor_result):
        analysis = analyze_chain(
            [("lb", lb_result.model), ("mon", monitor_result.model)]
        )
        assert "lb" in analysis.summary()


class TestTestGeneration:
    def test_suite_covers_entries(self, lb_result):
        suite = generate_tests(lb_result)
        assert suite.cases
        covered = {case.target_entry for case in suite.cases}
        assert len(covered) >= lb_result.model.n_entries - len(
            suite.uncovered_entries
        )

    def test_packets_are_concrete_and_valid(self, lb_result):
        from repro.net.packet import FIELD_DOMAINS

        suite = generate_tests(lb_result)
        for case in suite.cases:
            for pkt in case.packets:
                for name, (lo, hi) in FIELD_DOMAINS.items():
                    assert lo <= getattr(pkt, name) <= hi

    def test_validation_against_original(self, lb_result):
        suite = generate_tests(lb_result)
        report = validate_suite(suite, lb_result)
        assert report.all_passed, report.failures

    def test_firewall_suite_validates(self, firewall_result):
        suite = generate_tests(firewall_result, max_cases=48)
        report = validate_suite(suite, firewall_result)
        assert report.all_passed, report.failures

    def test_suite_summary(self, lb_result):
        suite = generate_tests(lb_result)
        assert lb_result.model.name in suite.summary()


def _lb_tuple():
    return (
        SVar("pkt.ip_src", 0, 2**32 - 1),
        SVar("pkt.sport", 0, 65535),
        SVar("pkt.ip_dst", 0, 2**32 - 1),
        SVar("pkt.dport", 0, 65535),
    )


def _fw_key():
    a = (SVar("pkt.ip_src", 0, 2**32 - 1), SVar("pkt.sport", 0, 65535))
    b = (SVar("pkt.ip_dst", 0, 2**32 - 1), SVar("pkt.dport", 0, 65535))
    return (a, b)
