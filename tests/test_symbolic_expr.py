"""Tests for symbolic expressions: folding, canonicalisation, evaluation."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.symbolic.expr import (
    SApp,
    SDictVal,
    SVar,
    SymDict,
    SymPacket,
    canon,
    eval_sym,
    is_concrete,
    leaf_key,
    mk_app,
    sym_vars,
)
from repro.util.hashing import stable_hash

X = SVar("pkt.x", 0, 100)
Y = SVar("pkt.y", 0, 100)


class TestMkApp:
    def test_concrete_folds(self):
        assert mk_app("+", 2, 3) == 5
        assert mk_app("==", 2, 2) is True
        assert mk_app("%", 7, 3) == 1

    def test_symbolic_stays(self):
        out = mk_app("+", X, 1)
        assert isinstance(out, SApp) and out.op == "+"

    def test_not_of_comparison_flips(self):
        eq = mk_app("==", X, 5)
        ne = mk_app("not", eq)
        assert isinstance(ne, SApp) and ne.op == "!="

    def test_double_negation_cancels(self):
        atom = SApp("member", ("t", X))
        assert mk_app("not", mk_app("not", atom)) == atom

    def test_and_identity_and_absorbing(self):
        c = mk_app("==", X, 1)
        assert mk_app("and", True, c) == c
        assert mk_app("and", False, c) is False
        assert mk_app("or", True, c) is True
        assert mk_app("or", False, c) == c
        assert mk_app("and") is True

    def test_hash_folds_via_stable_hash(self):
        assert mk_app("hash", (1, 2)) == stable_hash((1, 2))

    def test_getitem_folds(self):
        assert mk_app("getitem", (10, 20), 1) == 20

    def test_cond_folds(self):
        assert mk_app("cond", True, 1, 2) == 1
        assert mk_app("cond", False, 1, 2) == 2


class TestCanon:
    def test_structural_identity(self):
        a = mk_app("==", X, 5)
        b = mk_app("==", SVar("pkt.x", 0, 100), 5)
        assert canon(a) == canon(b)

    def test_distinguishes_values(self):
        assert canon(mk_app("==", X, 5)) != canon(mk_app("==", X, 6))

    def test_distinguishes_types(self):
        assert canon(1) != canon(True)
        assert canon(1) != canon("1")

    def test_tuple_vs_list(self):
        assert canon((1, 2)) != canon([1, 2])


class TestEvalSym:
    def test_var_lookup(self):
        assert eval_sym(X, {leaf_key(X): 42}) == 42

    def test_app_evaluation(self):
        expr = mk_app("+", mk_app("*", X, 2), Y)
        assert eval_sym(expr, {leaf_key(X): 3, leaf_key(Y): 4}) == 10

    def test_member_atom(self):
        atom = SApp("member", ("t", X))
        assert eval_sym(atom, {leaf_key(atom): True}) is True
        assert eval_sym(atom, {}) is False

    def test_dictval_default(self):
        dv = SDictVal("t", "k")
        assert eval_sym(dv, {}) == 0
        assert eval_sym(dv, {leaf_key(dv): 9}) == 9

    def test_structured(self):
        assert eval_sym((X, [Y, 1]), {leaf_key(X): 1, leaf_key(Y): 2}) == (1, [2, 1])

    @given(st.integers(0, 100), st.integers(0, 100))
    def test_fold_equals_eval(self, a, b):
        """Folding concrete args must equal evaluating the symbolic tree."""
        for op in ("+", "-", "*", "&", "|", "^", "==", "<", ">="):
            tree = SApp(op, (X, Y))
            assignment = {leaf_key(X): a, leaf_key(Y): b}
            assert eval_sym(tree, assignment) == mk_app(op, a, b)


class TestSymVars:
    def test_collects_leaves(self):
        expr = mk_app("and", mk_app("==", X, 1), mk_app("<", Y, 2))
        names = {v.name for v in sym_vars(expr) if isinstance(v, SVar)}
        assert names == {"pkt.x", "pkt.y"}

    def test_member_atom_is_leaf_and_recursed(self):
        atom = SApp("member", ("t", (X,)))
        leaves = sym_vars(atom)
        assert atom in leaves
        assert X in leaves

    def test_is_concrete(self):
        assert is_concrete((1, [2, {"a": 3}]))
        assert not is_concrete((1, X))
        assert not is_concrete(SymDict("t"))


class TestSymPacket:
    def test_fresh_fields_are_vars(self):
        p = SymPacket.fresh()
        assert isinstance(p.get("dport"), SVar)
        assert p.get("dport").name == "pkt.dport"

    def test_set_get(self):
        p = SymPacket.fresh()
        p.set("dport", 80)
        assert p.get("dport") == 80

    def test_unknown_field_rejected(self):
        p = SymPacket.fresh()
        with pytest.raises(KeyError):
            p.get("nope")
        with pytest.raises(KeyError):
            p.set("nope", 1)

    def test_copy_independent(self):
        p = SymPacket.fresh()
        q = p.copy()
        q.set("dport", 1)
        assert isinstance(p.get("dport"), SVar)


class TestSymDict:
    def test_written_value_lookup(self):
        d = SymDict("t")
        d.store((X, 1), "v")
        assert d.written_value((X, 1)) == (True, "v")
        assert d.written_value((X, 2)) is None

    def test_last_write_wins(self):
        d = SymDict("t")
        d.store(1, "a")
        d.store(1, "b")
        assert d.written_value(1) == (True, "b")

    def test_delete_hides_write(self):
        d = SymDict("t")
        d.store(1, "a")
        d.delete(1)
        assert d.written_value(1) is None
        assert canon(1) in d.deleted

    def test_store_after_delete_revives(self):
        d = SymDict("t")
        d.delete(1)
        d.store(1, "a")
        assert d.written_value(1) == (True, "a")
        assert canon(1) not in d.deleted

    def test_copy_independent(self):
        d = SymDict("t")
        d.store(1, "a")
        e = d.copy()
        e.store(2, "b")
        e.assumed["x"] = True
        assert d.written_value(2) is None
        assert "x" not in d.assumed
