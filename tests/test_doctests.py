"""Run the doctests embedded in module docstrings."""

from __future__ import annotations

import doctest

import pytest

import repro.net.addresses
import repro.net.generator
import repro.net.packet
import repro.util.timer

MODULES = [
    repro.net.addresses,
    repro.net.generator,
    repro.net.packet,
    repro.util.timer,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    failures, tested = doctest.testmod(module).failed, doctest.testmod(module).attempted
    assert tested > 0, f"{module.__name__} has no doctests"
    assert failures == 0
