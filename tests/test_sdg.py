"""Tests for the interprocedural SDG and two-pass slicing."""

from __future__ import annotations

from repro.lang.parser import parse_program
from repro.nfs import get_nf
from repro.pdg.sdg import RET, SDGNode, K_FORMAL_IN, K_FORMAL_OUT, build_sdg, mod_ref
from repro.slicing.interproc import InterproceduralSlicer


class TestModRef:
    def test_direct_global_write(self):
        program = parse_program(
            "x = 0\ndef f(a):\n    global x\n    x = a\n    return 0\n"
        )
        mods, refs = mod_ref(program)
        assert "x" in mods["f"]

    def test_weak_update_is_mod(self):
        program = parse_program("d = {}\ndef f(a):\n    d[a] = 1\n    return 0\n")
        mods, _ = mod_ref(program)
        assert "d" in mods["f"]

    def test_transitive_through_callee(self):
        program = parse_program(
            "x = 0\n"
            "def g(a):\n    global x\n    x = a\n    return 0\n"
            "def f(a):\n    return g(a)\n"
        )
        mods, _ = mod_ref(program)
        assert "x" in mods["f"]

    def test_locals_excluded(self):
        program = parse_program("def f(a):\n    y = a\n    return y\n")
        mods, refs = mod_ref(program)
        assert "y" not in mods["f"]
        assert "y" not in refs["f"]

    def test_global_read_is_ref(self):
        program = parse_program("W = 2\ndef f(a):\n    return a * W\n")
        _, refs = mod_ref(program)
        assert "W" in refs["f"]


class TestSummaryPrecision:
    SOURCE = (
        "def pick(a, b):\n"
        "    return a\n"             # result depends only on the 1st arg
        "def cb(pkt):\n"
        "    x = pkt.ttl\n"
        "    y = pkt.length\n"
        "    z = pick(x, y)\n"
        "    pkt.ttl = z\n"
        "    send_packet(pkt)\n"
    )

    def test_unused_argument_excluded_from_slice(self):
        program = parse_program(self.SOURCE, entry="cb")
        slicer = InterproceduralSlicer(program)
        lines = program.source_lines(slicer.slice_from_outputs())
        source = self.SOURCE.splitlines()
        texts = [source[ln - 1].strip() for ln in lines]
        assert "x = pkt.ttl" in texts
        assert "y = pkt.length" not in texts  # summary: ret depends on a only

    def test_summary_edges_exist(self):
        program = parse_program(self.SOURCE, entry="cb")
        sdg = build_sdg(program)
        summaries = [
            (src, dst)
            for dst, preds in sdg.preds.items()
            for src, kind in preds.items()
            if kind == "summary"
        ]
        assert summaries


class TestTwoPassSlicing:
    def test_slice_descends_into_callee(self):
        source = (
            "BASE = 7\n"
            "def compute(v):\n    t = v + BASE\n    return t\n"
            "def cb(pkt):\n    pkt.ttl = compute(pkt.ttl)\n    send_packet(pkt)\n"
        )
        program = parse_program(source, entry="cb")
        slicer = InterproceduralSlicer(program)
        lines = program.source_lines(slicer.slice_from_outputs())
        texts = [source.splitlines()[ln - 1].strip() for ln in lines]
        assert "t = v + BASE" in texts
        assert "BASE = 7" in texts

    def test_slice_does_not_bleed_to_other_callers(self):
        # Slicing inside g's body from a criterion reached via cb must
        # not pull in the unrelated caller h (calling-context respect).
        source = (
            "def g(v):\n    return v + 1\n"
            "def h(pkt):\n    unrelated = g(999)\n    return unrelated\n"
            "def cb(pkt):\n    pkt.ttl = g(pkt.ttl)\n    send_packet(pkt)\n"
        )
        program = parse_program(source, entry="cb")
        slicer = InterproceduralSlicer(program)
        lines = program.source_lines(slicer.slice_from_outputs())
        texts = [source.splitlines()[ln - 1].strip() for ln in lines]
        assert "unrelated = g(999)" not in texts

    def test_state_helper_sliced_through(self):
        source = (
            "tbl = {}\n"
            "def remember(k, v):\n    tbl[k] = v\n    return 0\n"
            "def cb(pkt):\n"
            "    remember(pkt.ip_src, 1)\n"
            "    if pkt.ip_src in tbl:\n"
            "        send_packet(pkt)\n"
        )
        program = parse_program(source, entry="cb")
        slicer = InterproceduralSlicer(program)
        lines = program.source_lines(slicer.slice_from_outputs())
        texts = [source.splitlines()[ln - 1].strip() for ln in lines]
        assert "tbl[k] = v" in texts
        assert "tbl = {}" in texts


class TestCorpusCrossCheck:
    """The SDG slice must cover the flat-view slice (it may be slightly
    larger: call statements are its atomic granularity)."""

    def _def_lines(self, program):
        return {
            fn.line for fn in program.functions.values()
        }

    def test_corpus_slices_covered(self, lb_result, nat_result, monitor_result):
        from repro.nfactor.algorithm import NFactor
        from repro.pdg.pdg import build_pdg
        from repro.slicing.static import StaticSlicer

        for result in (lb_result, nat_result, monitor_result):
            program = result.program
            slicer = InterproceduralSlicer(program)
            sdg_lines = set(program.source_lines(slicer.slice_from_outputs()))
            # Single-invocation flat slice: the SDG models one pass of
            # the packet callback (the pipeline's looped view adds
            # cross-invocation state flow on top).
            nf = NFactor(program)
            flat, _, _ = nf.flatten()
            pdg = build_pdg(flat.block, flat.entry_vars())
            pkt_slice = StaticSlicer(pdg).backward_many(nf.output_criteria(flat))
            flat_lines = set(flat.source_lines(pkt_slice))
            # function headers show up in the flat view via inlined
            # parameter bindings; ignore them for the comparison.
            flat_lines -= self._def_lines(program)
            assert flat_lines <= sdg_lines, result.model.name
