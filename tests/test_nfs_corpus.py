"""Behavioural tests of the NF corpus (the reference implementations).

Every NF runs under the concrete interpreter; these tests check the NF
*semantics* — correct NAT mappings, handshake gating, rule verdicts —
independent of any analysis machinery.
"""

from __future__ import annotations

import pytest

from repro.interp import Interpreter
from repro.lang.parser import parse_program
from repro.net.packet import Packet, TCP_ACK, TCP_FIN, TCP_RST, TCP_SYN
from repro.nfactor.transforms import normalize_structure
from repro.nfs import all_nfs, get_nf, nf_names


def make_interp(name: str) -> Interpreter:
    spec = get_nf(name)
    program = parse_program(spec.source, name=name)
    if spec.socket_level:
        from repro.nfactor.tcp_unfold import unfold_tcp

        program = unfold_tcp(program)
    program, _ = normalize_structure(program)
    interp = Interpreter(program=program)
    interp.run_module()
    return interp


class TestRegistry:
    def test_known_names(self):
        assert set(nf_names()) == {
            "balance",
            "firewall",
            "l2switch",
            "loadbalancer",
            "monitor",
            "nat",
            "proxycache",
            "ratelimiter",
            "snortlite",
        }

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_nf("nope")

    def test_all_sources_parse(self):
        for spec in all_nfs():
            program = parse_program(spec.source, name=spec.name)
            assert program.loc() > 5

    def test_sources_are_valid_python(self):
        import ast

        for spec in all_nfs():
            ast.parse(spec.source)  # must also be plain Python


class TestLoadBalancer:
    VIP = 50529027

    def test_round_robin_alternates_backends(self):
        interp = make_interp("loadbalancer")
        out1 = interp.process_packet(Packet(dport=80, ip_src=1, sport=1, ip_dst=self.VIP))
        out2 = interp.process_packet(Packet(dport=80, ip_src=2, sport=2, ip_dst=self.VIP))
        assert out1[0][0].ip_dst != out2[0][0].ip_dst

    def test_same_flow_keeps_mapping(self):
        interp = make_interp("loadbalancer")
        a = interp.process_packet(Packet(dport=80, ip_src=1, sport=9, ip_dst=self.VIP))
        b = interp.process_packet(Packet(dport=80, ip_src=1, sport=9, ip_dst=self.VIP))
        assert a[0][0] == b[0][0]

    def test_reverse_traffic_translated_back(self):
        interp = make_interp("loadbalancer")
        fwd = interp.process_packet(Packet(dport=80, ip_src=1, sport=9, ip_dst=self.VIP))[0][0]
        reply = Packet(
            ip_src=fwd.ip_dst, sport=fwd.dport, ip_dst=fwd.ip_src, dport=fwd.sport
        )
        back = interp.process_packet(reply)
        assert back[0][0].ip_dst == 1
        assert back[0][0].dport == 9

    def test_unsolicited_reverse_dropped(self):
        interp = make_interp("loadbalancer")
        assert interp.process_packet(Packet(dport=9999)) == []
        assert interp.globals["drop_stat"] == 1

    def test_source_nat_applied(self):
        interp = make_interp("loadbalancer")
        out = interp.process_packet(Packet(dport=80, ip_src=1, sport=9, ip_dst=self.VIP))
        assert out[0][0].ip_src == self.VIP
        assert out[0][0].sport == 10000  # first allocated port


class TestNat:
    EXT = 3405803777
    INSIDE = 167772161  # 10.0.0.1

    def test_outbound_translation(self):
        interp = make_interp("nat")
        out = interp.process_packet(Packet(ip_src=self.INSIDE, sport=999, ip_dst=7))
        assert out[0][0].ip_src == self.EXT
        assert out[0][0].sport == 20000

    def test_mapping_reused_per_flow(self):
        interp = make_interp("nat")
        a = interp.process_packet(Packet(ip_src=self.INSIDE, sport=999, ip_dst=7))
        b = interp.process_packet(Packet(ip_src=self.INSIDE, sport=999, ip_dst=8))
        assert a[0][0].sport == b[0][0].sport

    def test_distinct_flows_distinct_ports(self):
        interp = make_interp("nat")
        a = interp.process_packet(Packet(ip_src=self.INSIDE, sport=1, ip_dst=7))
        b = interp.process_packet(Packet(ip_src=self.INSIDE, sport=2, ip_dst=7))
        assert a[0][0].sport != b[0][0].sport

    def test_reverse_traffic_detranslated(self):
        interp = make_interp("nat")
        out = interp.process_packet(Packet(ip_src=self.INSIDE, sport=999, ip_dst=7))
        mapped = out[0][0].sport
        reply = Packet(ip_src=7, sport=80, ip_dst=self.EXT, dport=mapped)
        back = interp.process_packet(reply)
        assert back[0][0].ip_dst == self.INSIDE
        assert back[0][0].dport == 999

    def test_unsolicited_inbound_dropped(self):
        interp = make_interp("nat")
        assert interp.process_packet(Packet(ip_src=7, ip_dst=self.EXT, dport=555)) == []

    def test_ttl_expiry(self):
        interp = make_interp("nat")
        assert interp.process_packet(Packet(ip_src=self.INSIDE, ttl=1)) == []
        assert interp.globals["dropped_ttl"] == 1

    def test_ttl_decremented(self):
        interp = make_interp("nat")
        out = interp.process_packet(Packet(ip_src=self.INSIDE, ttl=64))
        assert out[0][0].ttl == 63


class TestFirewall:
    FLOW = dict(ip_src=1, sport=100, ip_dst=2, dport=80)

    def test_trusted_syn_opens_connection(self):
        interp = make_interp("firewall")
        out = interp.process_packet(Packet(tcp_flags=TCP_SYN, in_port=0, **self.FLOW))
        assert len(out) == 1
        assert len(interp.globals["conns"]) == 1

    def test_untrusted_syn_blocked(self):
        interp = make_interp("firewall")
        out = interp.process_packet(Packet(tcp_flags=TCP_SYN, in_port=1, **self.FLOW))
        assert out == []

    def test_full_handshake_and_data(self):
        interp = make_interp("firewall")
        interp.process_packet(Packet(tcp_flags=TCP_SYN, in_port=0, **self.FLOW))
        synack = Packet(
            tcp_flags=TCP_SYN | TCP_ACK, in_port=1,
            ip_src=2, sport=80, ip_dst=1, dport=100,
        )
        assert len(interp.process_packet(synack)) == 1
        ack = Packet(tcp_flags=TCP_ACK, in_port=0, **self.FLOW)
        assert len(interp.process_packet(ack)) == 1
        data = Packet(tcp_flags=TCP_ACK, in_port=1, ip_src=2, sport=80, ip_dst=1, dport=100)
        assert len(interp.process_packet(data)) == 1

    def test_data_without_handshake_blocked(self):
        interp = make_interp("firewall")
        out = interp.process_packet(Packet(tcp_flags=TCP_ACK, in_port=0, **self.FLOW))
        assert out == []

    def test_acl_blocks_port(self):
        interp = make_interp("firewall")
        bad = Packet(tcp_flags=TCP_SYN, in_port=0, ip_src=1, sport=9, ip_dst=2, dport=445)
        assert interp.process_packet(bad) == []
        assert interp.globals["blocked_acl"] == 1

    def test_rst_teardown(self):
        interp = make_interp("firewall")
        interp.process_packet(Packet(tcp_flags=TCP_SYN, in_port=0, **self.FLOW))
        rst = Packet(tcp_flags=TCP_RST, in_port=0, **self.FLOW)
        assert len(interp.process_packet(rst)) == 1
        assert len(interp.globals["conns"]) == 0

    def test_non_tcp_dropped_in_strict_mode(self):
        interp = make_interp("firewall")
        assert interp.process_packet(Packet(proto=17)) == []


class TestSnortlite:
    def clean(self, **kw):
        base = dict(ip_src=99, sport=40000, ip_dst=7, dport=8080, tcp_flags=TCP_ACK)
        base.update(kw)
        return Packet(**base)

    def test_benign_traffic_forwarded(self):
        interp = make_interp("snortlite")
        assert len(interp.process_packet(self.clean())) == 1

    def test_drop_rule_telnet_to_home(self):
        interp = make_interp("snortlite")
        bad = self.clean(ip_dst=167772161, dport=23)
        assert interp.process_packet(bad) == []
        assert interp.globals["drop_count"] == 1
        assert interp.globals["alert_count"] == 1

    def test_alert_rule_forwards_and_logs(self):
        interp = make_interp("snortlite")
        # rule 1004: SYN+FIN scan — alert + forward
        weird = self.clean(tcp_flags=3)
        assert len(interp.process_packet(weird)) == 1
        assert interp.globals["alert_count"] == 1
        assert interp.globals["alerts"]

    def test_pass_rule_overrides_later_alerts(self):
        interp = make_interp("snortlite")
        # rule 1007 whitelists ssh from HOME_NET
        ssh = self.clean(ip_src=167772161, dport=22)
        assert len(interp.process_packet(ssh)) == 1
        assert interp.globals["alert_count"] == 0

    def test_malformed_dropped(self):
        interp = make_interp("snortlite")
        assert interp.process_packet(self.clean(eth_type=0x0806)) == []
        assert interp.globals["decode_errors"] == 1
        assert interp.process_packet(self.clean(length=5)) == []

    def test_portscan_blocking(self):
        interp = make_interp("snortlite")
        src = 123456
        for port in range(20):
            syn = self.clean(ip_src=src, tcp_flags=TCP_SYN, dport=1000 + port)
            interp.process_packet(syn)
        assert src in interp.globals["blocked_hosts"]
        # once blocked, everything from that source drops
        assert interp.process_packet(self.clean(ip_src=src)) == []

    def test_established_only_rule(self):
        interp = make_interp("snortlite")
        flow = dict(ip_src=5, sport=1000, ip_dst=167772161, dport=80)
        sig = 3405691582
        # content rule 1003 requires an established stream: first packet
        # with the signature but no handshake does not alert.
        interp.process_packet(Packet(tcp_flags=TCP_ACK, payload_sig=sig, **flow))
        assert interp.globals["alert_count"] == 0
        interp.process_packet(Packet(tcp_flags=TCP_SYN, **flow))
        interp.process_packet(Packet(tcp_flags=TCP_ACK, **flow))
        interp.process_packet(Packet(tcp_flags=TCP_ACK, payload_sig=sig, **flow))
        assert interp.globals["alert_count"] == 1

    def test_udp_rule(self):
        interp = make_interp("snortlite")
        snmp = Packet(proto=17, ip_src=9, sport=1, ip_dst=167772161, dport=161)
        assert interp.process_packet(snmp) == []  # drop rule 1005

    def test_stats_accumulate(self):
        interp = make_interp("snortlite")
        for _ in range(5):
            interp.process_packet(self.clean())
        assert interp.globals["total_pkts"] == 5
        assert interp.globals["tcp_pkts"] == 5

    def test_http_inspector_counts(self):
        interp = make_interp("snortlite")
        interp.process_packet(self.clean(ip_dst=9, dport=8080, payload_len=4000))
        interp.process_packet(self.clean(ip_src=9, sport=80, dport=40000))
        assert interp.globals["http_requests"] == 1
        assert interp.globals["http_responses"] == 1
        assert interp.globals["http_oversized_uri"] == 1

    def test_alert_tags_flow_and_expires(self):
        interp = make_interp("snortlite")
        flow = dict(ip_src=5, sport=1000, ip_dst=6, dport=2000)
        interp.process_packet(Packet(tcp_flags=3, **flow))  # SYN+FIN alert
        assert interp.globals["tags_started"] == 1
        key = (5, 1000, 6, 2000)
        assert key in interp.globals["tagged_flows"]
        for _ in range(8):
            interp.process_packet(Packet(tcp_flags=TCP_ACK, **flow))
        assert key not in interp.globals["tagged_flows"]
        assert interp.globals["tags_expired"] == 1
        assert interp.globals["tagged_logged"] == 8

    def test_alert_threshold_suppresses(self):
        interp = make_interp("snortlite")
        for i in range(14):
            # distinct flows so each SYN+FIN fires rule 1004 freshly
            interp.process_packet(
                Packet(tcp_flags=3, ip_src=100 + i, sport=1000, ip_dst=6, dport=2000)
            )
        assert interp.globals["alert_count"] == 10  # SUPPRESS_AFTER
        assert interp.globals["alerts_suppressed"] == 4
        assert 1004 in interp.globals["suppressed"]

    def test_analytics_never_change_forwarding(self, snortlite_result):
        """The alert-only machinery is pruned: none of its state is
        output-impacting and none of its lines is in the slice."""
        cats = snortlite_result.categories
        assert {"tagged_flows", "alert_counts", "suppressed"} <= cats.log_vars
        src = snortlite_result.program.source.splitlines()
        sliced = snortlite_result.flat.source_lines(snortlite_result.union_slice)
        text = " ".join(src[ln - 1] for ln in sliced if ln <= len(src))
        assert "http_inspect" not in text
        assert "tagged_flows" not in text
        assert "threshold_allows" not in text


class TestMonitor:
    def test_everything_forwarded(self):
        interp = make_interp("monitor")
        for pkt in [Packet(), Packet(proto=17), Packet(dport=443)]:
            assert len(interp.process_packet(pkt)) == 1

    def test_classification_counters(self):
        interp = make_interp("monitor")
        interp.process_packet(Packet(proto=6, dport=80))
        interp.process_packet(Packet(proto=6, dport=443))
        interp.process_packet(Packet(proto=17))
        assert interp.globals["web_pkts"] == 1
        assert interp.globals["tls_pkts"] == 1
        assert interp.globals["udp_pkts"] == 1
