"""E3 — paper Table 1: NFactor variable categorisation on the LB.

Regenerates the table

    Category | Features                                   | In code example
    pktVar   | packet I/O parameter/return value          | pkt
    cfgVar   | persistent, top-level, not updateable      | mode, LB_IP
    oisVar   | persistent, top-level, updateable, o-i     | f2b_nat, rr_idx
    logVar   | persistent, top-level, updateable, not o-i | pass_stat, drop_stat

and asserts the paper's example variables land in the right rows.
"""

from __future__ import annotations

from common import print_table, synthesize


def test_table1(benchmark):
    result = benchmark.pedantic(
        lambda: synthesize("loadbalancer"), rounds=1, iterations=1
    )
    cats = result.categories
    table = cats.as_table()

    print_table(
        "Table 1 (reproduced) — NFactor variable categorisation, load balancer",
        ["Category", "Features", "Variables found"],
        [
            ["pktVar", "packet I/O function parameter/return value",
             ", ".join(sorted(table["pktVar"]))],
            ["cfgVar", "persistent, top-level, not updateable",
             ", ".join(sorted(table["cfgVar"]))],
            ["oisVar", "persistent, top-level, updateable, output-impacting",
             ", ".join(sorted(table["oisVar"]))],
            ["logVar", "persistent, top-level, updateable, not output-impacting",
             ", ".join(sorted(table["logVar"]))],
        ],
    )
    for key in ("pktVar", "cfgVar", "oisVar", "logVar"):
        benchmark.extra_info[key] = sorted(table[key])

    # The paper's exact examples:
    assert "pkt" in table["pktVar"]
    assert {"mode", "LB_IP"} <= table["cfgVar"]
    assert {"f2b_nat", "rr_idx"} <= table["oisVar"]
    assert {"pass_stat", "drop_stat"} <= table["logVar"]
