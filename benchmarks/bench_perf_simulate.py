"""E9 — simulate-path performance: interpreted vs compiled vs batch.

Measures the serve tier's packet hot path on warm models: the
interpreted :class:`ModelSimulator` (guard ASTs walked per packet via
``eval_symbolic``) against the model compiler
(:mod:`repro.model.compile` — config folding, decision-tree dispatch,
``compile()``-ed guard functions, reused interpreter) in both
single-packet and :meth:`process_many` batch form.

Outcome byte-identity is asserted before any number is reported: all
three runs must produce the same sent packets, the same
matched-entry counts, and the same end state from the same workload.
Cold compile time is reported separately from warm throughput — the
compiler pays its cost once per model, not per packet.

Runs two ways:

- as a pytest benchmark: ``pytest benchmarks/bench_perf_simulate.py``
  (asserts the acceptance thresholds: identical outcomes, >=5x warm
  compiled-batch throughput on snortlite);
- as a script: ``python benchmarks/bench_perf_simulate.py [--quick]``
  (CI ``perf-smoke``: a 3-NF subset with a smaller workload, same
  assertions).  Both script modes write ``BENCH_perf_simulate.json``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Dict, List

from common import print_table, synthesize, write_bench_json
from repro.interp.values import deep_copy
from repro.model.compile import compile_model
from repro.model.simulator import ModelSimulator
from repro.net.generator import TrafficGenerator, WorkloadSpec
from repro.nfs import get_nf

CORPUS = ["nat", "firewall", "balance", "proxycache", "snortlite"]
CORPUS_QUICK = ["nat", "firewall", "snortlite"]

#: The ISSUE's throughput target lives on the largest model.
TARGET_NF = "snortlite"
TARGET_SPEEDUP = 5.0

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_perf_simulate.json"


def _outcome(sim) -> tuple:
    stats = sim.stats
    return (
        stats.packets,
        stats.forwarded,
        stats.dropped_default,
        stats.dropped_entry,
        dict(stats.matched_entries),
    )


def run_one(name: str, n_packets: int) -> Dict[str, object]:
    """Interpreted/compiled/batch over one warm model + one workload."""
    result = synthesize(name)
    spec = get_nf(name)
    workload = WorkloadSpec(
        n_packets=n_packets, seed=1_009, interesting=spec.interesting or {}
    )
    packets = list(TrafficGenerator(workload).packets())

    interp = ModelSimulator(
        result.model, deep_copy(result.module_env), pkt_param=result.pkt_param
    )
    t0 = time.perf_counter()
    out_interp = [interp.process(pkt.copy()) for pkt in packets]
    interp_s = time.perf_counter() - t0

    compiled = compile_model(
        result.model, result.module_env, pkt_param=result.pkt_param
    )

    sim_c = compiled.simulator(deep_copy(result.module_env))
    t0 = time.perf_counter()
    out_compiled = [sim_c.process(pkt.copy()) for pkt in packets]
    compiled_s = time.perf_counter() - t0

    sim_b = compiled.simulator(deep_copy(result.module_env))
    batch = [pkt.copy() for pkt in packets]
    t0 = time.perf_counter()
    out_batch = sim_b.process_many(batch)
    batch_s = time.perf_counter() - t0

    identical = (
        out_interp == out_compiled == out_batch
        and _outcome(interp) == _outcome(sim_c) == _outcome(sim_b)
        and interp.state == sim_c.state == sim_b.state
    )
    n = len(packets)
    return {
        "nf": name,
        "n_packets": n,
        "n_entries": compiled.n_entries,
        "n_live_entries": compiled.n_live,
        "n_pruned_entries": compiled.n_pruned,
        "tree_depth": compiled.tree_depth,
        "compile_s": round(compiled.compile_seconds, 4),
        "interpreted_pps": round(n / interp_s, 1) if interp_s else 0.0,
        "compiled_pps": round(n / compiled_s, 1) if compiled_s else 0.0,
        "batch_pps": round(n / batch_s, 1) if batch_s else 0.0,
        "compiled_speedup": round(interp_s / compiled_s, 2) if compiled_s else 0.0,
        "batch_speedup": round(interp_s / batch_s, 2) if batch_s else 0.0,
        "interpreted_guard_evals": interp.stats.guard_evals,
        "compiled_guard_evals": sim_c.stats.guard_evals,
        "identical_outcomes": identical,
    }


def measure(names: List[str], n_packets: int) -> Dict[str, object]:
    from repro import cache as artifact_cache

    with artifact_cache.override(enabled=False):
        per_nf = [run_one(name, n_packets) for name in names]
    target = next((r for r in per_nf if r["nf"] == TARGET_NF), None)
    return {
        "nfs": names,
        "n_packets": n_packets,
        "target_nf": TARGET_NF,
        "target_speedup": TARGET_SPEEDUP,
        "target_batch_speedup": target["batch_speedup"] if target else None,
        "identical_outcomes": all(r["identical_outcomes"] for r in per_nf),
        "per_nf": per_nf,
    }


def report(row: Dict[str, object]) -> None:
    print_table(
        "Warm simulate throughput (interpreted vs compiled vs batch)",
        ["NF", "entries", "live", "compile", "interp pps", "compiled pps",
         "batch pps", "speedup", "batch", "identical"],
        [[
            r["nf"], r["n_entries"], r["n_live_entries"],
            f"{r['compile_s'] * 1000:.1f}ms",
            r["interpreted_pps"], r["compiled_pps"], r["batch_pps"],
            f"{r['compiled_speedup']}x", f"{r['batch_speedup']}x",
            r["identical_outcomes"],
        ] for r in row["per_nf"]],
    )


def check(row: Dict[str, object]) -> List[str]:
    failures = []
    if not row["identical_outcomes"]:
        failures.append("compiled outcomes diverged from the interpreter")
    target = row["target_batch_speedup"]
    if target is None:
        failures.append(f"{TARGET_NF} missing from the run")
    elif target < TARGET_SPEEDUP:
        failures.append(
            f"{TARGET_NF} compiled-batch speedup {target}x is below the "
            f"{TARGET_SPEEDUP}x target"
        )
    return failures


# -- pytest benchmark entry ---------------------------------------------------


def test_perf_simulate(benchmark):
    row = benchmark.pedantic(
        measure, args=(CORPUS, 3000), rounds=1, iterations=1
    )
    for key, value in row.items():
        if key != "per_nf":
            benchmark.extra_info[key] = value
    report(row)
    failures = check(row)
    assert not failures, "; ".join(failures)


# -- script entry (CI perf-smoke) ---------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="3-NF subset with a smaller workload (CI smoke)",
    )
    parser.add_argument(
        "-n", "--packets", type=int, default=None,
        help="workload size per NF (default: 3000, quick: 1500)",
    )
    parser.add_argument(
        "--out",
        "--json",
        dest="out",
        default=DEFAULT_OUT,
        type=Path,
        help=f"result JSON path (default: {DEFAULT_OUT.name} at the repo root)",
    )
    args = parser.parse_args(argv)

    names = CORPUS_QUICK if args.quick else CORPUS
    n_packets = args.packets or (1500 if args.quick else 3000)
    row = measure(names, n_packets)
    row["mode"] = "quick" if args.quick else "full"
    report(row)

    write_bench_json(args.out, "perf_simulate", row)

    failures = check(row)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
