"""E9 — serving latency: cold vs. warm synthesize through ``repro.serve``.

Measures the request path of the PR-5 serving subsystem end-to-end
over real sockets, against a private temporary cache directory:

- **cold** — first ``synthesize`` per NF: the full pipeline runs in a
  worker process and the model tier is written;
- **warm** — repeated ``synthesize`` of the same NFs: served from the
  artifact cache's model tier (p95 must be ≥ 10× below the cold
  median — the serving hot path);
- **burst** — more concurrent requests than ``workers + queue_size``
  against a deliberately tiny server: the overflow must come back as
  explicit 429 rejections, quickly, with nothing hung;
- **loop lag** — the server's own event-loop lag probe
  (``serve.loop_lag_max_seconds``) must stay under 100 ms through all
  of the above: the event loop only shuffles bytes and futures.

Runs two ways:

- as a pytest benchmark: ``pytest benchmarks/bench_serve.py``;
- as a script: ``python benchmarks/bench_serve.py [--quick]``
  (the CI ``perf-smoke`` job runs ``--quick``).  Both write
  ``BENCH_serve.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List

from common import print_table, write_bench_json
from repro.serve import ServeClient, ServeConfig, ServerHandle

CORPUS_QUICK = ["nat", "firewall", "loadbalancer"]
CORPUS_FULL = ["nat", "firewall", "loadbalancer", "balance", "monitor", "proxycache"]

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


def _percentile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[idx]


def _timed_synthesize(client: ServeClient, name: str) -> float:
    t0 = time.perf_counter()
    client.synthesize(name).raise_for_status()
    return time.perf_counter() - t0


def measure_latency(names: List[str], warm_rounds: int, workers: int) -> Dict[str, object]:
    """Cold-vs-warm synthesize latency through a real server."""
    handle = ServerHandle(ServeConfig(port=0, workers=workers))
    handle.start()
    try:
        client = ServeClient("127.0.0.1", handle.port, timeout=300)
        cold = [_timed_synthesize(client, name) for name in names]
        # Touch every NF once more so *every* worker's memory tier (and
        # the shared disk tier) is warm before sampling.
        for name in names:
            for _ in range(workers):
                _timed_synthesize(client, name)
        warm: List[float] = []
        for _ in range(warm_rounds):
            for name in names:
                warm.append(_timed_synthesize(client, name))
        lag_max = (
            handle.registry.snapshot()["gauges"].get("serve.loop_lag_max_seconds", 0.0)
        )
    finally:
        handle.stop()
    cold_median = _percentile(cold, 0.5)
    warm_p95 = _percentile(warm, 0.95)
    return {
        "nfs": names,
        "workers": workers,
        "warm_samples": len(warm),
        "cold_median_ms": round(cold_median * 1000, 3),
        "cold_max_ms": round(max(cold) * 1000, 3),
        "warm_p50_ms": round(_percentile(warm, 0.5) * 1000, 3),
        "warm_p95_ms": round(warm_p95 * 1000, 3),
        "warm_p99_ms": round(_percentile(warm, 0.99) * 1000, 3),
        "cold_over_warm_p95": round(cold_median / warm_p95, 1) if warm_p95 else 0.0,
        "loop_lag_max_ms": round(float(lag_max) * 1000, 3),
    }


def measure_burst(n_requests: int = 12) -> Dict[str, object]:
    """Overload a tiny server; the overflow must be explicit 429s."""
    os.environ["REPRO_SERVE_TEST_OPS"] = "1"
    handle = ServerHandle(ServeConfig(port=0, workers=1, queue_size=2))
    handle.start()
    try:
        client = ServeClient("127.0.0.1", handle.port, timeout=60)
        statuses: List[int] = []
        lock = threading.Lock()

        def fire() -> None:
            response = client.request(
                "POST", "/v1/sleep", {"seconds": 0.5, "timeout_s": 10}
            )
            with lock:
                statuses.append(response.status)

        threads = [threading.Thread(target=fire) for _ in range(n_requests)]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        elapsed = time.perf_counter() - t0
        lag_max = (
            handle.registry.snapshot()["gauges"].get("serve.loop_lag_max_seconds", 0.0)
        )
    finally:
        handle.stop()
        os.environ.pop("REPRO_SERVE_TEST_OPS", None)
    return {
        "burst_requests": n_requests,
        "burst_ok": statuses.count(200),
        "burst_rejected": statuses.count(429),
        "burst_hung": n_requests - len(statuses),
        "burst_elapsed_s": round(elapsed, 3),
        "burst_loop_lag_max_ms": round(float(lag_max) * 1000, 3),
    }


def measure(names: List[str], warm_rounds: int, workers: int) -> Dict[str, object]:
    tmp = tempfile.mkdtemp(prefix="repro-bench-serve-")
    saved = {
        key: os.environ.get(key) for key in ("REPRO_CACHE", "REPRO_CACHE_DIR")
    }
    os.environ["REPRO_CACHE"] = "1"
    os.environ["REPRO_CACHE_DIR"] = tmp
    try:
        row = measure_latency(names, warm_rounds, workers)
        row.update(measure_burst())
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        shutil.rmtree(tmp, ignore_errors=True)
    return row


def check(row: Dict[str, object]) -> List[str]:
    """The acceptance assertions; returns human-readable failures."""
    failures = []
    if row["cold_over_warm_p95"] < 10.0:
        failures.append(
            f"warm p95 {row['warm_p95_ms']}ms is not 10x below cold median "
            f"{row['cold_median_ms']}ms (ratio {row['cold_over_warm_p95']}x)"
        )
    if row["burst_rejected"] == 0:
        failures.append("overloaded server rejected nothing")
    if row["burst_hung"]:
        failures.append(f"{row['burst_hung']} burst requests hung")
    for key in ("loop_lag_max_ms", "burst_loop_lag_max_ms"):
        if row[key] >= 100.0:
            failures.append(f"{key} {row[key]}ms >= 100ms (event loop blocked)")
    return failures


def report(row: Dict[str, object]) -> None:
    print_table(
        "Serving latency (cold / warm via model tier)",
        ["NFs", "cold p50", "warm p50", "warm p95", "cold/warm p95",
         "loop lag max"],
        [[
            len(row["nfs"]), f"{row['cold_median_ms']}ms",
            f"{row['warm_p50_ms']}ms", f"{row['warm_p95_ms']}ms",
            f"{row['cold_over_warm_p95']}x", f"{row['loop_lag_max_ms']}ms",
        ]],
    )
    print_table(
        "Backpressure burst (workers=1, queue=2)",
        ["requests", "ok", "rejected (429)", "hung", "elapsed"],
        [[
            row["burst_requests"], row["burst_ok"], row["burst_rejected"],
            row["burst_hung"], f"{row['burst_elapsed_s']}s",
        ]],
    )


# -- pytest benchmark entry ---------------------------------------------------


def test_perf_serve(benchmark):
    row = benchmark.pedantic(
        measure, args=(CORPUS_QUICK, 10, 2), rounds=1, iterations=1
    )
    for key, value in row.items():
        benchmark.extra_info[key] = value
    report(row)
    failures = check(row)
    assert not failures, "; ".join(failures)


# -- script entry (CI perf-smoke) ---------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="3-NF subset, fewer warm rounds (the CI perf-smoke mode)",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    names = CORPUS_QUICK if args.quick else CORPUS_FULL
    row = measure(names, warm_rounds=10 if args.quick else 30,
                  workers=2 if args.quick else 4)
    row["mode"] = "quick" if args.quick else "full"
    report(row)
    failures = check(row)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    write_bench_json(args.out, "serve", row)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
