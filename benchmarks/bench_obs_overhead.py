"""E10 — request-tracing overhead on the warm serving hot path.

PR 1's invariant, re-checked at the serve tier: observability must be
effectively free when it matters.  Two sequential servers run over the
**same** pre-warmed artifact cache directory:

- **tracing off** (``ServeConfig(tracing=False)``, client sends no
  ``traceparent``): request ids + metrics only — the baseline;
- **tracing on** (the default): every request carries a trace context
  into the worker, pipeline spans ship home, get stitched and recorded
  in the flight recorder.

Both sample the warm ``synthesize`` path (pure model-tier cache hits),
so the comparison isolates the per-request observability cost from
synthesis itself.  Fails unless:

- warm p95 with tracing on is within 5% (plus a small absolute slack
  for CI timer noise) of tracing off;
- the synthesized models are **byte-identical** across modes — tracing
  must never change results;
- the traced server actually recorded stitched span trees (guards
  against "zero overhead" because tracing silently did nothing).

Runs two ways:

- as a pytest benchmark: ``pytest benchmarks/bench_obs_overhead.py``;
- as a script: ``python benchmarks/bench_obs_overhead.py [--quick]``
  (the CI ``perf-smoke`` job runs ``--quick``).  Both write
  ``BENCH_obs_overhead.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List

from common import print_table, write_bench_json
from repro.serve import ServeClient, ServeConfig, ServerHandle

CORPUS_QUICK = ["nat", "firewall", "monitor"]
CORPUS_FULL = ["nat", "firewall", "loadbalancer", "balance", "monitor", "proxycache"]

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_obs_overhead.json"

#: Relative overhead budget for warm p95 (tracing on vs. off).
MAX_OVERHEAD_FRACTION = 0.05
#: Absolute slack (ms) so sub-millisecond warm latencies don't turn
#: CI timer noise into flakes (5% of 2ms is 100µs — below clock jitter).
ABS_SLACK_MS = 2.0


def _percentile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[idx]


def _measure_mode(
    names: List[str], warm_rounds: int, workers: int, tracing: bool
) -> Dict[str, object]:
    """Warm synthesize latency through one server, tracing on or off."""
    handle = ServerHandle(ServeConfig(port=0, workers=workers, tracing=tracing))
    handle.start()
    try:
        client = ServeClient("127.0.0.1", handle.port, timeout=300, tracing=tracing)
        # Prime every worker's memory tier (and, on the first mode, the
        # shared disk tier) before sampling.
        models: Dict[str, str] = {}
        for name in names:
            for _ in range(workers + 1):
                response = client.synthesize(name).raise_for_status()
            models[name] = json.dumps(response.result["model"], sort_keys=True)
        samples: List[float] = []
        for _ in range(warm_rounds):
            for name in names:
                t0 = time.perf_counter()
                client.synthesize(name).raise_for_status()
                samples.append(time.perf_counter() - t0)
        snapshot = handle.registry.snapshot()
        traced = int(snapshot["counters"].get("serve.traced_requests", 0))
    finally:
        handle.stop()
    return {
        "tracing": tracing,
        "samples": len(samples),
        "p50_ms": round(_percentile(samples, 0.5) * 1000, 3),
        "p95_ms": round(_percentile(samples, 0.95) * 1000, 3),
        "traced_requests": traced,
        "models": models,
    }


def measure(names: List[str], warm_rounds: int, workers: int) -> Dict[str, object]:
    tmp = tempfile.mkdtemp(prefix="repro-bench-obs-")
    saved = {
        key: os.environ.get(key) for key in ("REPRO_CACHE", "REPRO_CACHE_DIR")
    }
    os.environ["REPRO_CACHE"] = "1"
    os.environ["REPRO_CACHE_DIR"] = tmp
    try:
        # Baseline first: it also populates the shared disk cache, so
        # both modes sample the identical warm (model-tier hit) path.
        off = _measure_mode(names, warm_rounds, workers, tracing=False)
        on = _measure_mode(names, warm_rounds, workers, tracing=True)
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        shutil.rmtree(tmp, ignore_errors=True)
    models_identical = off.pop("models") == on.pop("models")
    p95_off = float(off["p95_ms"])
    p95_on = float(on["p95_ms"])
    return {
        "nfs": names,
        "workers": workers,
        "warm_samples": off["samples"],
        "off_p50_ms": off["p50_ms"],
        "off_p95_ms": off["p95_ms"],
        "on_p50_ms": on["p50_ms"],
        "on_p95_ms": on["p95_ms"],
        "overhead_p95_ms": round(p95_on - p95_off, 3),
        "overhead_p95_pct": round(
            100.0 * (p95_on - p95_off) / p95_off if p95_off else 0.0, 1
        ),
        "traced_requests": on["traced_requests"],
        "baseline_traced_requests": off["traced_requests"],
        "models_identical": models_identical,
    }


def check(row: Dict[str, object]) -> List[str]:
    """The acceptance assertions; returns human-readable failures."""
    failures = []
    budget = float(row["off_p95_ms"]) * (1.0 + MAX_OVERHEAD_FRACTION) + ABS_SLACK_MS
    if float(row["on_p95_ms"]) > budget:
        failures.append(
            f"tracing-on warm p95 {row['on_p95_ms']}ms exceeds budget "
            f"{budget:.3f}ms (off p95 {row['off_p95_ms']}ms + 5% + "
            f"{ABS_SLACK_MS}ms slack)"
        )
    if not row["models_identical"]:
        failures.append("synthesized models differ between tracing on and off")
    if int(row["traced_requests"]) == 0:
        failures.append("traced server recorded no stitched span trees")
    if int(row["baseline_traced_requests"]) != 0:
        failures.append("tracing-off server recorded span trees (not off)")
    return failures


def report(row: Dict[str, object]) -> None:
    print_table(
        "Warm serve latency: tracing off vs. on",
        ["NFs", "off p50", "off p95", "on p50", "on p95", "overhead p95",
         "models identical"],
        [[
            len(row["nfs"]), f"{row['off_p50_ms']}ms", f"{row['off_p95_ms']}ms",
            f"{row['on_p50_ms']}ms", f"{row['on_p95_ms']}ms",
            f"{row['overhead_p95_ms']}ms ({row['overhead_p95_pct']}%)",
            row["models_identical"],
        ]],
    )


# -- pytest benchmark entry ---------------------------------------------------


def test_perf_obs_overhead(benchmark):
    row = benchmark.pedantic(
        measure, args=(CORPUS_QUICK, 15, 2), rounds=1, iterations=1
    )
    for key, value in row.items():
        benchmark.extra_info[key] = value
    report(row)
    failures = check(row)
    assert not failures, "; ".join(failures)


# -- script entry (CI perf-smoke) ---------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="3-NF subset, fewer warm rounds (the CI perf-smoke mode)",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    names = CORPUS_QUICK if args.quick else CORPUS_FULL
    row = measure(names, warm_rounds=15 if args.quick else 40,
                  workers=2 if args.quick else 4)
    row["mode"] = "quick" if args.quick else "full"
    report(row)
    failures = check(row)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    write_bench_json(args.out, "obs_overhead", row)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
