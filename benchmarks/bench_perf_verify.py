"""E9 — graph verification at scale: edge-summary cache + incremental re-verify.

Measures :mod:`repro.netverify` on a seeded ~30-NF layered DAG, five
ways, against a private temporary cache directory:

- **no-cache**    — edge cache disabled: every edge's transfer function
  is recomputed (the reference bytes);
- **cold**        — cache enabled over an empty directory: every edge
  misses and its summary is written;
- **warm**        — same directory, in-memory tier dropped (fresh
  process over a warm disk): every edge is a pure summary lookup;
- **parallel**    — cache disabled, independent edges fanned over
  worker processes;
- **incremental** — one sink-layer NF is swapped for a different corpus
  NF and the graph re-verified warm: only the dirty region (the edited
  node's edges) recomputes.

Caching and parallelism must never change verdicts: the five runs'
canonical serializations (reachable spaces, traces, witnesses) are
asserted byte-identical — the incremental run against a fresh no-cache
recompute of the *edited* graph — before any timing is reported.

Runs two ways:

- as a pytest benchmark: ``pytest benchmarks/bench_perf_verify.py``
  (asserts the acceptance thresholds: incremental re-verify ≥ 10×
  faster than cold on the ~30-NF graph);
- as a script: ``python benchmarks/bench_perf_verify.py [--quick]``
  (``--quick`` uses a ~12-NF graph and only asserts identity, full warm
  hits and a proper dirty region — the CI ``perf-smoke`` job).  Both
  script modes write ``BENCH_perf_verify.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict

from repro import cache as artifact_cache
from repro.netverify import GraphVerifier, GraphVerifyConfig, generate_graph
from repro.netverify.graph import DEFAULT_NF_POOL, _synthesized
from repro.symbolic.solver import clear_global_cache

FULL_NODES, FULL_WIDTH = 30, 5
QUICK_NODES, QUICK_WIDTH = 12, 4
SEED = 7

#: Default output path, anchored at the repo root (not the CWD).
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_perf_verify.json"


def _verify(graph, use_cache: bool, jobs: int = 1):
    """One timed verification (solver cache off: honest cold timings)."""
    clear_global_cache()
    config = GraphVerifyConfig(use_cache=use_cache, jobs=jobs, solver_cache=False)
    t0 = time.perf_counter()
    verdict = GraphVerifier(graph, config=config).verify()
    return verdict, time.perf_counter() - t0


def _edit_sink_node(graph) -> str:
    """Swap one last-layer node's NF for a different corpus NF.

    A sink-layer edit has the smallest downstream cone — the
    best case the edge cache is built for (and the common one:
    topology edits land at the leaves far more often than at the
    shared trunk).  Returns the edited node's name.
    """
    victim = graph.topo_levels()[-1][0]
    current = graph.nodes[victim].model.name
    replacement = next(nf for nf in DEFAULT_NF_POOL if nf != current)
    model, key = _synthesized(replacement)
    graph.replace_model(victim, model, model_key=key)
    return victim


def measure(n_nodes: int, width: int) -> Dict[str, object]:
    """The five-way comparison over a private temp cache dir."""
    tmp = tempfile.mkdtemp(prefix="repro-bench-verify-")
    try:
        with artifact_cache.override(directory=tmp, enabled=True):
            graph = generate_graph(n_nodes, seed=SEED, width=width)
            # Pre-synthesize the incremental run's replacement model so
            # model synthesis never pollutes a verification timing.
            for nf in DEFAULT_NF_POOL:
                _synthesized(nf)

            with artifact_cache.override(enabled=False):
                nocache, t_nocache = _verify(graph, use_cache=False)

            cold, t_cold = _verify(graph, use_cache=True)

            # Fresh-process simulation: only the disk tier survives.
            artifact_cache.get_store().drop_memory()
            warm, t_warm = _verify(graph, use_cache=True)

            with artifact_cache.override(enabled=False):
                par, t_par = _verify(graph, use_cache=False, jobs=4)

            edited = _edit_sink_node(graph)
            incr, t_incr = _verify(graph, use_cache=True)
            with artifact_cache.override(enabled=False):
                fresh, t_fresh = _verify(graph, use_cache=False)
    finally:
        clear_global_cache()
        shutil.rmtree(tmp, ignore_errors=True)

    identical = nocache.to_json() == cold.to_json() == warm.to_json() == par.to_json()
    incr_identical = incr.to_json() == fresh.to_json()
    return {
        "n_nodes": graph.n_nodes,
        "n_graph_edges": graph.n_edges,
        "edges": cold.stats.edges,
        "identical_verdicts": identical,
        "incremental_identical": incr_identical,
        "can_reach": cold.can_reach,
        "n_spaces": cold.n_spaces,
        "nocache_s": round(t_nocache, 4),
        "cold_s": round(t_cold, 4),
        "warm_s": round(t_warm, 4),
        "parallel_s": round(t_par, 4),
        "incremental_s": round(t_incr, 4),
        "fresh_recompute_s": round(t_fresh, 4),
        "warm_hits": warm.stats.cache_hits,
        "warm_dirty": warm.stats.dirty_edges,
        "incr_hits": incr.stats.cache_hits,
        "incr_dirty": incr.stats.dirty_edges,
        "edited_node": edited,
        "speedup_warm": round(t_cold / t_warm, 2) if t_warm else 0.0,
        "speedup_incremental": round(t_cold / t_incr, 2) if t_incr else 0.0,
    }


def report(row: Dict[str, object]) -> None:
    from common import print_table

    print_table(
        "Graph verification (cold / warm / incremental)",
        ["nodes", "edges", "cold", "warm", "incr", "warm hits",
         "incr dirty", "speedup warm", "speedup incr", "identical"],
        [[
            row["n_nodes"], row["edges"], f"{row['cold_s']}s",
            f"{row['warm_s']}s", f"{row['incremental_s']}s",
            f"{row['warm_hits']}/{row['edges']}", row["incr_dirty"],
            f"{row['speedup_warm']}x", f"{row['speedup_incremental']}x",
            row["identical_verdicts"] and row["incremental_identical"],
        ]],
    )


def check(row: Dict[str, object], quick: bool) -> list:
    failures = []
    if not row["identical_verdicts"]:
        failures.append("cache/parallel modes changed the verdict bytes")
    if not row["incremental_identical"]:
        failures.append("incremental re-verify diverged from a fresh recompute")
    if not row["can_reach"]:
        failures.append("generated graph unexpectedly blackholes everything")
    if row["warm_hits"] != row["edges"] or row["warm_dirty"] != 0:
        failures.append(
            f"warm run not pure lookup: {row['warm_hits']}/{row['edges']} hits, "
            f"{row['warm_dirty']} recomputed"
        )
    if not 0 < row["incr_dirty"] < row["edges"]:
        failures.append(
            f"dirty region degenerate: {row['incr_dirty']}/{row['edges']} edges"
        )
    if not quick and row["speedup_incremental"] < 10.0:
        failures.append(
            f"incremental speedup {row['speedup_incremental']}x < 10x"
        )
    return failures


# -- pytest benchmark entry ---------------------------------------------------


def test_perf_verify(benchmark):
    row = benchmark.pedantic(
        measure, args=(FULL_NODES, FULL_WIDTH), rounds=1, iterations=1
    )
    for key, value in row.items():
        benchmark.extra_info[key] = value
    report(row)
    failures = check(row, quick=False)
    assert not failures, "; ".join(failures)


# -- script entry (CI perf-smoke) ---------------------------------------------


def main(argv=None) -> int:
    from common import write_bench_json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="~12-NF graph; only assert identity + warm hits + dirty "
        "region (CI smoke)",
    )
    parser.add_argument(
        "--out",
        "--json",
        dest="out",
        default=DEFAULT_OUT,
        type=Path,
        help=f"result JSON path (default: {DEFAULT_OUT.name} at the repo root)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        row = measure(QUICK_NODES, QUICK_WIDTH)
    else:
        row = measure(FULL_NODES, FULL_WIDTH)
    row["mode"] = "quick" if args.quick else "full"
    report(row)

    write_bench_json(args.out, "perf_verify", row)

    failures = check(row, quick=args.quick)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
