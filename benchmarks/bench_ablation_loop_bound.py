"""Ablation — symbolic loop bound k (paper §3.2, path explosion).

The paper argues input-dependent loops make symbolic execution
intractable and NFs must be written/bounded to avoid it.  This bench
sweeps the engine's loop bound on a program with an input-dependent
loop and measures how the path count and the exploration cost grow —
the explosion the bounding discipline prevents.  On the NF corpus
(bounded by construction) the bound is shown not to matter.
"""

from __future__ import annotations

import pytest

from common import print_table
from repro.lang.parser import parse_program
from repro.pdg.flatten import flatten_program
from repro.symbolic.engine import EngineConfig, SymbolicEngine
from repro.symbolic.expr import SymPacket
from repro.util.timer import Stopwatch

INPUT_DEPENDENT_LOOP = '''
def cb(pkt):
    i = 0
    budget = pkt.ttl
    while i < budget:
        i += 1
    pkt.length = i % 65536
    send_packet(pkt)
'''


def sweep(bounds):
    program = parse_program(INPUT_DEPENDENT_LOOP, entry="cb")
    flat = flatten_program(program)
    rows = []
    for k in bounds:
        engine = SymbolicEngine(EngineConfig(loop_bound=k, keep_pruned=True))
        with Stopwatch() as sw:
            paths = engine.explore(list(flat.block), {"pkt": SymPacket.fresh()})
        done = sum(1 for p in paths if p.status == "done")
        truncated = engine.stats.paths_truncated
        rows.append((k, done, truncated, engine.stats.steps, sw.elapsed))
    return rows


def test_loop_bound_sweep(benchmark):
    rows = benchmark.pedantic(sweep, args=([1, 2, 4, 8, 16, 32],), rounds=1, iterations=1)
    print_table(
        "Ablation — symbolic loop bound k (input-dependent loop)",
        ["k", "complete paths", "truncated", "engine steps", "time (s)"],
        [[k, d, t, s, f"{e:.4f}"] for k, d, t, s, e in rows],
    )
    # Path count grows linearly with k here (one exit per iteration
    # count); with nested symbolic loops it would be exponential.
    ks = [r[0] for r in rows]
    dones = [r[1] for r in rows]
    steps = [r[3] for r in rows]
    assert dones == [k + 1 for k in ks]
    assert steps[-1] > steps[0] * 4
    benchmark.extra_info["paths_at_max_k"] = dones[-1]


def test_corpus_insensitive_to_bound(benchmark):
    """Corpus NFs follow the bounded-loop discipline: the bound never
    triggers, so path counts are identical across k."""
    from repro.nfactor.algorithm import NFactor, NFactorConfig
    from repro.nfs import get_nf

    def measure():
        counts = {}
        for k in (2, 6, 12):
            config = NFactorConfig(engine=EngineConfig(loop_bound=k))
            result = NFactor(
                get_nf("loadbalancer").source, name="lb", config=config
            ).synthesize()
            counts[k] = result.stats.n_paths
        return counts

    counts = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Ablation — loop bound on the (bounded) LB",
        ["k", "paths"],
        [[k, n] for k, n in counts.items()],
    )
    assert len(set(counts.values())) == 1
