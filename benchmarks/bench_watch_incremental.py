"""Watch-loop incremental re-synthesis benchmark (docs/internals.md §15).

The scenario ``repro watch`` lives for: one multi-handler NF source
file, each handler its own synthesis target.  Editing a single handler
must re-synthesize ≥5× faster than the whole-file cold pass, because
function-level frontend keys leave every untouched sibling a pure
model-tier hit — only the edited handler's slices/model recompute.

Also asserts the non-negotiable identity property: the incremental
path changes nothing but speed — the edited target's model is
byte-identical to a fresh no-cache synthesis of the edited source.

Run as a script (CI perf-smoke uses ``--quick``) or under pytest.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Tuple

from common import print_table, write_bench_json
from repro import cache as artifact_cache
from repro.nfactor.algorithm import NFactorConfig, synthesize_model_cached
from repro.symbolic.solver import clear_global_cache

HANDLERS_FULL = 10
HANDLERS_QUICK = 8
SPEEDUP_GATE = 5.0

#: Default output path, anchored at the repo root (not the CWD).
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_watch.json"


def build_source(k: int) -> str:
    """A k-handler NFPy file; handler ``h_i`` reads only its own state."""
    parts = ["MODE = 1", ""]
    for i in range(k):
        parts.append(
            f"st_{i} = {{}}\n"
            "\n"
            f"def h_{i}(pkt):\n"
            "    if pkt.proto != 6:\n"
            "        if MODE == 1:\n"
            "            return\n"
            "        send_packet(pkt)\n"
            "        return\n"
            "    key = (pkt.ip_src, pkt.sport)\n"
            f"    if pkt.dport == {1000 + i}:\n"
            f"        if key in st_{i}:\n"
            f"            st_{i}[key] = st_{i}[key] + 1\n"
            "            send_packet(pkt)\n"
            "            return\n"
            f"        st_{i}[key] = 1\n"
            "        return\n"
            f"    if pkt.dport == {2000 + i}:\n"
            f"        if key in st_{i}:\n"
            f"            del st_{i}[key]\n"
            "        return\n"
            f"    if pkt.dport == {3000 + i}:\n"
            f"        if key in st_{i}:\n"
            f"            if st_{i}[key] > {5 + i}:\n"
            "                send_packet(pkt)\n"
            "                return\n"
            f"            st_{i}[key] = st_{i}[key] + 2\n"
            "        return\n"
            f"    if pkt.sport == {4000 + i}:\n"
            f"        if key in st_{i}:\n"
            "            send_packet(pkt)\n"
            "        return\n"
            "    send_packet(pkt)\n"
        )
    return "\n".join(parts)


def run_targets(source: str, k: int) -> Tuple[List[Any], float]:
    """Synthesize all k targets; returns (CachedModels, seconds)."""
    clear_global_cache()  # no in-process solver carryover between passes
    t0 = time.perf_counter()
    models = [
        synthesize_model_cached(source, name=f"multi.h_{i}", entry=f"h_{i}")
        for i in range(k)
    ]
    return models, time.perf_counter() - t0


def measure(k: int) -> Dict[str, Any]:
    source = build_source(k)
    edited = source.replace("== 1000:", "== 999:", 1)  # h_0's guard only
    assert edited != source
    with tempfile.TemporaryDirectory() as cache_dir:
        with artifact_cache.override(directory=cache_dir, enabled=True):
            cold_models, t_cold = run_targets(source, k)
            store = artifact_cache.get_store()
            before = dict(store.counters)
            incr_models, t_incr = run_targets(edited, k)
            after = dict(store.counters)
    fresh = synthesize_model_cached(
        edited, name="multi.h_0", entry="h_0",
        config=NFactorConfig(artifact_cache=False),
    )
    return {
        "handlers": k,
        "cold_s": round(t_cold, 4),
        "incremental_s": round(t_incr, 4),
        "speedup": round(t_cold / t_incr, 2) if t_incr > 0 else float("inf"),
        "cold_misses": sum(1 for m in cold_models if not m.cached),
        "incremental_rebuilds": sum(1 for m in incr_models if not m.cached),
        "incremental_model_hits": sum(1 for m in incr_models if m.cached),
        "model_tier_hits": after.get("kind.model.hits", 0)
        - before.get("kind.model.hits", 0),
        "identical_models": incr_models[0].model_json == fresh.model_json,
    }


def check(row: Dict[str, Any]) -> List[str]:
    failures = []
    k = row["handlers"]
    if not row["identical_models"]:
        failures.append(
            "incremental model differs from a fresh batch synthesis"
        )
    if row["incremental_rebuilds"] != 1:
        failures.append(
            f"edit rebuilt {row['incremental_rebuilds']} targets, expected 1"
        )
    if row["incremental_model_hits"] != k - 1:
        failures.append(
            f"model-tier hits {row['incremental_model_hits']}/{k - 1}"
        )
    if row["speedup"] < SPEEDUP_GATE:
        failures.append(
            f"incremental speedup {row['speedup']}x < {SPEEDUP_GATE}x"
        )
    return failures


def report(row: Dict[str, Any]) -> None:
    print_table(
        "watch incremental re-synthesis (single-handler edit)",
        ["handlers", "cold s", "incr s", "speedup", "rebuilds", "hits", "identical"],
        [[
            row["handlers"], row["cold_s"], row["incremental_s"],
            f"{row['speedup']}x", row["incremental_rebuilds"],
            row["incremental_model_hits"], row["identical_models"],
        ]],
    )


# -- pytest entry -------------------------------------------------------------


def test_incremental_edit_speedup():
    row = measure(HANDLERS_QUICK)
    assert not check(row), check(row)


# -- script entry (CI perf-smoke) ---------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"{HANDLERS_QUICK} handlers instead of {HANDLERS_FULL} (CI smoke)",
    )
    parser.add_argument(
        "--out",
        "--json",
        dest="out",
        default=DEFAULT_OUT,
        type=Path,
        help=f"result JSON path (default: {DEFAULT_OUT.name} at the repo root)",
    )
    args = parser.parse_args(argv)

    row = measure(HANDLERS_QUICK if args.quick else HANDLERS_FULL)
    row["mode"] = "quick" if args.quick else "full"
    report(row)
    write_bench_json(args.out, "watch_incremental", row)

    failures = check(row)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
