"""Ablation — single-invocation packet slice vs. the full Algorithm-1
slice (packet ∪ state, computed on the packet-processing loop).

Two ingredients make the synthesized model *stateful*: the
state-transition slice (Alg. 1 lines 6–9) and computing dependences on
the packet loop (StateAlyzer's persistence assumption), which lets a
state store in one invocation reach a read in a later one.  This bench
removes both — slicing a single invocation from the outputs only — and
shows the failure mode: the crippled model forwards the *first* packet
of every flow correctly but never updates its tables, so a second flow
gets the same backend/port instead of the next ones.
"""

from __future__ import annotations

from common import print_table, synthesize
from repro.interp.values import deep_copy
from repro.model.simulator import ModelSimulator
from repro.net.packet import Packet
from repro.nfactor.algorithm import NFactor
from repro.nfactor.refactor import build_model
from repro.nfs import get_nf
from repro.pdg.pdg import build_pdg
from repro.slicing.static import StaticSlicer


def build_variants():
    result = synthesize("loadbalancer")
    stmts = result.flat.stmts()
    full_model = result.model

    # Single-invocation packet-only slice (no loop view, no state slice).
    nf = NFactor(get_nf("loadbalancer").source, name="lb")
    flat, _, _ = nf.flatten()
    pdg = build_pdg(flat.block, flat.entry_vars())
    single_slice = StaticSlicer(pdg).backward_many(nf.output_criteria(flat))
    crippled_model = build_model(
        "lb-single-invocation",
        result.paths,
        stmts,
        single_slice,
        set(),
        ois_vars=result.categories.ois_vars,
    )
    return result, full_model, crippled_model, single_slice


def test_state_slice_ablation(benchmark):
    result, full_model, crippled_model, single_slice = benchmark.pedantic(
        build_variants, rounds=1, iterations=1
    )

    def n_state_updates(model):
        return sum(len(e.state_action_stmts) for e in model.all_entries())

    print_table(
        "Ablation — single-invocation pkt slice vs. packet ∪ state slice (LB)",
        ["variant", "slice stmts", "state-update stmts"],
        [
            ["packet ∪ state slice (loop view)", len(result.union_slice),
             n_state_updates(full_model)],
            ["packet slice, single invocation", len(single_slice),
             n_state_updates(crippled_model)],
        ],
    )
    assert n_state_updates(full_model) > 0
    assert n_state_updates(crippled_model) == 0
    assert len(single_slice) < len(result.union_slice)

    # Behavioural failure: with no state transitions the round-robin
    # index never advances, so a second flow lands on the same backend.
    flow1 = dict(dport=80, ip_src=3, sport=44, ip_dst=50529027)
    flow2 = dict(dport=80, ip_src=4, sport=55, ip_dst=50529027)
    ref = result.make_reference()
    ref_out1 = ref.process_packet(Packet(**flow1))
    ref_out2 = ref.process_packet(Packet(**flow2))
    assert ref_out1[0][0].ip_dst != ref_out2[0][0].ip_dst  # RR alternates

    crippled = ModelSimulator(crippled_model, deep_copy(result.module_env))
    bad_out1 = crippled.process(Packet(**flow1))
    bad_out2 = crippled.process(Packet(**flow2))
    assert bad_out1 == ref_out1                    # first flow still right
    assert bad_out2 != ref_out2                    # statefulness is lost
    assert bad_out2[0][0].ip_dst == bad_out1[0][0].ip_dst
    benchmark.extra_info["stateless_model_diverges"] = True

    healthy = result.make_simulator()
    assert healthy.process(Packet(**flow1)) == ref_out1
    assert healthy.process(Packet(**flow2)) == ref_out2
