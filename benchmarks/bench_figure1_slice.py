"""E1 — paper Figure 1: the load balancer and its highlighted slice.

Regenerates the figure's content: the LB source with the (dynamic)
slice of the first-packet forwarding path highlighted, plus the static
packet/state slice sizes.  The dynamic slice must contain exactly the
first-packet round-robin logic — and none of the hash branch or the
log counters — which is what the paper's highlighting shows.
"""

from __future__ import annotations

import pytest

from common import print_table, synthesize
from repro.interp import Env, Interpreter
from repro.interp.values import deep_copy
from repro.lang.ir import ECall, SExpr, iter_block
from repro.lang.pretty import pretty_slice
from repro.net.packet import Packet
from repro.slicing.criteria import SliceCriterion
from repro.slicing.dynamic import dynamic_slice


def figure1_artifacts():
    result = synthesize("loadbalancer")
    interp = Interpreter(trace=True)
    state = deep_copy(result.module_env)
    state["pkt"] = Packet(dport=80, ip_src=42, sport=999, ip_dst=50529027)
    interp.run_block(result.flat.block, Env(globals=state))
    send = [
        s
        for s in iter_block(result.flat.block)
        if isinstance(s, SExpr)
        and isinstance(s.value, ECall)
        and s.value.func == "send_packet"
    ][0]
    dyn = dynamic_slice(interp.trace, SliceCriterion(send.sid, None))
    return result, dyn, send.line


def test_figure1_dynamic_slice(benchmark):
    result, dyn, send_line = benchmark.pedantic(
        figure1_artifacts, rounds=1, iterations=1
    )
    dyn_lines = result.flat.source_lines(dyn)
    static_lines = result.slice_source_lines()
    source = result.program.source.splitlines()

    marked = []
    for i, line in enumerate(source, start=1):
        prefix = ">> " if i in dyn_lines else "   "
        marked.append(prefix + line)
    print("\n=== Figure 1 (reproduced): LB with first-packet dynamic slice ===")
    print("\n".join(marked))

    print_table(
        "Figure 1 slice sizes",
        ["artifact", "source lines"],
        [
            ["whole program", len([l for l in source if l.strip() and not l.strip().startswith('#')])],
            ["static union slice", len(static_lines)],
            ["dynamic first-packet slice", len(dyn_lines)],
        ],
    )
    benchmark.extra_info["dynamic_slice_lines"] = len(dyn_lines)
    benchmark.extra_info["static_slice_lines"] = len(static_lines)

    text = " ".join(source[ln - 1] for ln in dyn_lines)
    assert "servers[rr_idx]" in text        # RR selection is highlighted
    assert "hash(si)" not in text           # untaken branch is not
    assert "pass_stat" not in text          # log updates are not
    assert dyn_lines <= static_lines | {send_line}
