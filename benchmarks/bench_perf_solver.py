"""E7 — solver performance: constraint caching and incremental solving.

Measures the PR-2 perf work end-to-end on the corpus, three ways:

- **baseline** — ``EngineConfig(solver_cache=False)``: every check is a
  fresh propagate-and-sample solve (the seed behaviour, minus this PR's
  interning/sampling wins which have no off switch);
- **cold**    — caching on, process-global constraint cache cleared
  first: in-run duplicate checks hit, everything else misses;
- **warm**    — caching on, cache still warm from the cold run: the
  re-synthesis case (benches, batch re-runs, refactor re-checks).

Caching must never change results, so the three runs' serialized models
are asserted byte-identical before any timing is reported.

Runs two ways:

- as a pytest benchmark: ``pytest benchmarks/bench_perf_solver.py``
  (asserts the acceptance thresholds: warm speedup ≥ 1.5×, combined
  cache hit-rate ≥ 50%);
- as a script: ``python benchmarks/bench_perf_solver.py [--quick]``
  (``--quick`` uses a 3-NF subset and only asserts hit-rate > 0 plus
  model identity — the CI ``perf-smoke`` job).  Both script modes write
  ``BENCH_perf_solver.json``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

from common import print_table, write_bench_json
from repro.model.serialize import model_to_json
from repro.nfactor.algorithm import NFactor, NFactorConfig
from repro.nfs import get_nf, nf_names
from repro.symbolic.engine import EngineConfig
from repro.symbolic.solver import clear_global_cache, global_cache

CORPUS_QUICK = ["nat", "firewall", "loadbalancer"]

#: Default output path, anchored at the repo root (not the CWD).
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_perf_solver.json"


def run_corpus(
    names: List[str], solver_cache: bool
) -> Tuple[Dict[str, str], int, int, float]:
    """Synthesize ``names`` sequentially; returns (models, hits, misses, s)."""
    models: Dict[str, str] = {}
    hits = misses = 0
    t0 = time.perf_counter()
    for name in names:
        spec = get_nf(name)
        # artifact_cache off: this bench isolates the *solver* cache.
        config = NFactorConfig(
            engine=EngineConfig(solver_cache=solver_cache), artifact_cache=False
        )
        result = NFactor(spec.source, name=name, config=config).synthesize()
        models[name] = model_to_json(result.model)
        hits += result.stats.solver_cache_hits
        misses += result.stats.solver_cache_misses
    return models, hits, misses, time.perf_counter() - t0


def measure(names: List[str]) -> Dict[str, object]:
    """The full baseline/cold/warm comparison over ``names``.

    The persistent artifact store (repro.cache) is disabled for the
    duration: it would reload the solver cache from disk and turn the
    "cold" run warm, and memoized pipeline phases would hide the solver
    cost this bench exists to measure.
    """
    from repro import cache as artifact_cache

    with artifact_cache.override(enabled=False):
        return _measure(names)


def _measure(names: List[str]) -> Dict[str, object]:
    clear_global_cache()
    base_models, _, _, t_base = run_corpus(names, solver_cache=False)

    clear_global_cache()
    cold_models, cold_hits, cold_misses, t_cold = run_corpus(names, solver_cache=True)
    warm_models, warm_hits, warm_misses, t_warm = run_corpus(names, solver_cache=True)

    identical = base_models == cold_models == warm_models
    hits = cold_hits + warm_hits
    misses = cold_misses + warm_misses
    return {
        "nfs": names,
        "identical_models": identical,
        "baseline_s": round(t_base, 4),
        "cold_s": round(t_cold, 4),
        "warm_s": round(t_warm, 4),
        "speedup_cold": round(t_base / t_cold, 2) if t_cold else 0.0,
        "speedup_warm": round(t_base / t_warm, 2) if t_warm else 0.0,
        "cold_hits": cold_hits,
        "cold_misses": cold_misses,
        "warm_hits": warm_hits,
        "warm_misses": warm_misses,
        "hit_rate": round(hits / (hits + misses), 4) if hits + misses else 0.0,
        "warm_hit_rate": (
            round(warm_hits / (warm_hits + warm_misses), 4)
            if warm_hits + warm_misses
            else 0.0
        ),
        "cache_entries": len(global_cache()),
    }


def report(row: Dict[str, object]) -> None:
    print_table(
        "Solver caching (baseline / cold / warm)",
        ["NFs", "base", "cold", "warm", "speedup cold", "speedup warm",
         "hit rate", "warm hit rate", "identical"],
        [[
            len(row["nfs"]), f"{row['baseline_s']}s", f"{row['cold_s']}s",
            f"{row['warm_s']}s", f"{row['speedup_cold']}x",
            f"{row['speedup_warm']}x", f"{row['hit_rate']:.0%}",
            f"{row['warm_hit_rate']:.0%}", row["identical_models"],
        ]],
    )


# -- pytest benchmark entry ---------------------------------------------------


def test_perf_solver(benchmark):
    row = benchmark.pedantic(measure, args=(list(nf_names()),), rounds=1, iterations=1)
    for key, value in row.items():
        benchmark.extra_info[key] = value
    report(row)

    assert row["identical_models"], "caching changed a synthesized model"
    assert row["speedup_warm"] >= 1.5, f"warm speedup {row['speedup_warm']}x < 1.5x"
    assert row["hit_rate"] >= 0.5, f"cache hit rate {row['hit_rate']:.0%} < 50%"


# -- script entry (CI perf-smoke) ---------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="3-NF subset; relax thresholds to hit-rate > 0 (CI smoke)",
    )
    parser.add_argument(
        "--out",
        "--json",
        dest="out",
        default=DEFAULT_OUT,
        type=Path,
        help=f"result JSON path (default: {DEFAULT_OUT.name} at the repo root)",
    )
    args = parser.parse_args(argv)

    names = CORPUS_QUICK if args.quick else list(nf_names())
    row = measure(names)
    row["mode"] = "quick" if args.quick else "full"
    report(row)

    write_bench_json(args.out, "perf_solver", row)

    failures = []
    if not row["identical_models"]:
        failures.append("caching changed a synthesized model")
    if row["hit_rate"] <= 0:
        failures.append("cache hit rate is zero")
    if not args.quick:
        if row["speedup_warm"] < 1.5:
            failures.append(f"warm speedup {row['speedup_warm']}x < 1.5x")
        if row["hit_rate"] < 0.5:
            failures.append(f"hit rate {row['hit_rate']:.0%} < 50%")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
