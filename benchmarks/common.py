"""Shared helpers for the benchmark harness.

Each benchmark regenerates one artifact of the paper's evaluation
(tables/figures, DESIGN.md §4) and prints a paper-style table.  Heavy
syntheses are cached per process so benches can share them.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.nfactor.algorithm import NFactor, NFactorConfig, SynthesisResult
from repro.nfs import get_nf
from repro.symbolic.engine import EngineConfig

_CACHE: Dict[str, SynthesisResult] = {}


def synthesize(name: str, max_paths: int = 16384) -> SynthesisResult:
    """Synthesize (and cache) the model of a corpus NF."""
    if name not in _CACHE:
        spec = get_nf(name)
        config = NFactorConfig(engine=EngineConfig(max_paths=max_paths))
        _CACHE[name] = NFactor(spec.source, name=name, config=config).synthesize()
    return _CACHE[name]


def print_table(title: str, headers: Sequence[str], rows: List[Sequence[str]]) -> None:
    """Print an aligned text table (the bench output artifact)."""
    widths = [len(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in str_rows:
        print(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    print()
