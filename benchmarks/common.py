"""Shared helpers for the benchmark harness.

Each benchmark regenerates one artifact of the paper's evaluation
(tables/figures, DESIGN.md §4) and prints a paper-style table.  Heavy
syntheses are cached per process so benches can share them;
:func:`warm_cache` pre-fills that cache across worker processes
(:mod:`repro.parallel`).

Syntheses run under an enabled observer (:mod:`repro.obs`), so every
cached :class:`SynthesisResult` carries the per-phase timings and the
full metrics snapshot in ``result.stats.phase_timings`` /
``result.stats.metrics`` — benchmark rows can report *where* the time
went, not just how much there was.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Sequence

from repro import obs
from repro.nfactor.algorithm import NFactor, NFactorConfig, SynthesisResult
from repro.nfs import get_nf
from repro.symbolic.engine import EngineConfig

_CACHE: Dict[str, SynthesisResult] = {}


def synthesize(name: str, max_paths: int = 16384) -> SynthesisResult:
    """Synthesize (and cache) the model of a corpus NF, observed.

    The persistent artifact cache is off here: a warm user cache would
    skip pipeline phases and hollow out the per-phase timings these
    benches report (bench_perf_cache measures the cache explicitly).
    """
    if name not in _CACHE:
        spec = get_nf(name)
        config = NFactorConfig(
            engine=EngineConfig(max_paths=max_paths), artifact_cache=False
        )
        with obs.observed():
            _CACHE[name] = NFactor(
                spec.source, name=name, config=config
            ).synthesize()
    return _CACHE[name]


def warm_cache(names: Sequence[str], jobs: int = 0, max_paths: int = 16384) -> None:
    """Pre-fill the synthesis cache for ``names`` across worker processes.

    Benches that need several corpus NFs can warm them in parallel
    instead of synthesizing one-by-one on first use.  Results land in
    the same per-process cache :func:`synthesize` reads, and each
    worker's metrics snapshot is folded into the ambient registry (when
    one is installed), so a parallel warm profiles like a sequential
    one.  ``jobs=0`` picks one worker per missing NF, capped by CPUs.
    """
    from repro.parallel import synthesize_many

    missing = [n for n in names if n not in _CACHE]
    if not missing:
        return
    outcomes = synthesize_many(
        missing, jobs=jobs or None, max_paths=max_paths,
        use_artifact_cache=False,  # same hermeticity as synthesize() above
    )
    for outcome in outcomes:
        if outcome.result is None:
            raise RuntimeError(
                f"warm_cache: {outcome.name} failed:\n{outcome.error}"
            )
        _CACHE[outcome.name] = outcome.result


def profile_snapshot(result: SynthesisResult) -> Dict[str, Any]:
    """The per-phase/metric snapshot of one synthesis (bench artifact)."""
    return {
        "phase_timings_s": dict(result.stats.phase_timings),
        "metrics": result.stats.metrics,
    }


def print_phase_profile(results: Dict[str, SynthesisResult]) -> None:
    """Append a per-NF phase-timing table to a bench's output."""
    phases: List[str] = []
    for result in results.values():
        for name in result.stats.phase_timings:
            if name not in phases:
                phases.append(name)
    print_table(
        "Per-phase timings (ms)",
        ["NF"] + phases,
        [
            [name]
            + [
                f"{result.stats.phase_timings.get(p, 0.0) * 1000:.1f}"
                for p in phases
            ]
            for name, result in results.items()
        ],
    )


#: Version of the shared BENCH_*.json envelope.  Bump when the common
#: fields change shape; per-bench payload fields are free to evolve.
BENCH_SCHEMA_VERSION = 1


def write_bench_json(out: Path, bench: str, row: Dict[str, Any]) -> Dict[str, Any]:
    """Write one benchmark's result row as ``BENCH_<name>.json``.

    Every bench artifact shares the same envelope — ``bench`` (the
    benchmark's name), ``schema_version``, and ``run_utc`` — so CI
    consumers can aggregate the uploaded files without per-bench
    special cases.  The bench-specific fields follow verbatim.
    """
    payload = {
        "bench": bench,
        "schema_version": BENCH_SCHEMA_VERSION,
        "run_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        **row,
    }
    out = Path(out)
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")
    return payload


def print_table(title: str, headers: Sequence[str], rows: List[Sequence[str]]) -> None:
    """Print an aligned text table (the bench output artifact)."""
    widths = [len(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in str_rows:
        print(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    print()
