"""E5 — paper Table 2: slicing reduction and symbolic-execution speedup.

Reproduces every column for the two study NFs (snortlite stands in for
snort 1.0, balance for balance 3.5 — DESIGN.md §2):

            | LoC            | Slicing | # of EP      | SE time
            | orig slice path| time    | orig   slice | orig     slice

Expected shape (not absolute numbers): slice ≪ orig LoC; the original's
path count explodes (capped, reported as ">cap") while the slice's stays
small; SE on the slice is orders of magnitude cheaper.

This bench doubles as the slicing on/off ablation called out in
DESIGN.md: the "orig" columns ARE the no-slicing configuration.
"""

from __future__ import annotations

import pytest

from common import print_phase_profile, print_table, profile_snapshot, synthesize
from repro.nfactor.algorithm import NFactor
from repro.nfs import get_nf
from repro.symbolic.engine import EngineConfig
from repro.util.timer import Stopwatch

#: Path cap for the unsliced baseline (the paper reports ">1000").
ORIG_CAP = 2000

NFS = ["snortlite", "balance"]


def table2_row(name: str) -> dict:
    """All Table-2 measurements for one NF."""
    result = synthesize(name)
    stats = result.stats

    nf = NFactor(get_nf(name).source, name=name)
    with Stopwatch() as sw:
        orig_paths, engine = nf.explore_original(
            EngineConfig(max_paths=ORIG_CAP)
        )
    n_orig = sum(1 for p in orig_paths if p.status == "done")
    orig_ep = f">{ORIG_CAP}" if engine.stats.exhausted else str(n_orig)

    return {
        "nf": name,
        "loc_orig": stats.source_loc,
        "loc_slice": stats.slice_loc,
        "loc_path": round(stats.path_loc_avg, 1),
        "slicing_time_s": round(stats.slicing_time_s, 3),
        "ep_orig": orig_ep,
        "ep_slice": stats.n_paths,
        "se_orig_s": round(sw.elapsed, 3),
        "se_slice_s": round(stats.se_time_s, 3),
        "profile": profile_snapshot(result),
    }


@pytest.mark.parametrize("name", NFS)
def test_table2(benchmark, name):
    row = benchmark.pedantic(table2_row, args=(name,), rounds=1, iterations=1)
    for key, value in row.items():
        benchmark.extra_info[key] = value

    print_table(
        f"Table 2 (reproduced) — {name}",
        ["NF", "LoC orig", "LoC slice", "LoC path", "Slicing time",
         "EP orig", "EP slice", "SE orig", "SE slice"],
        [[
            row["nf"], row["loc_orig"], row["loc_slice"], row["loc_path"],
            f"{row['slicing_time_s']}s", row["ep_orig"], row["ep_slice"],
            f"{row['se_orig_s']}s", f"{row['se_slice_s']}s",
        ]],
    )

    # Shape assertions (who wins, by roughly what factor):
    assert row["loc_slice"] < row["loc_orig"]
    assert row["loc_path"] <= row["loc_slice"]
    if row["ep_orig"].startswith(">"):
        assert row["ep_slice"] < ORIG_CAP
    else:
        assert row["ep_slice"] <= int(row["ep_orig"])


def test_table2_speedup_shape(benchmark):
    """Cross-NF claims: snort-like benefits more (its non-forwarding
    codebase is larger), and slicing cost is modest (paper: seconds)."""
    rows = benchmark.pedantic(
        lambda: {name: table2_row(name) for name in NFS}, rounds=1, iterations=1
    )
    print_table(
        "Table 2 (reproduced) — combined",
        ["NF", "LoC orig", "LoC slice", "LoC path", "Slicing time",
         "EP orig", "EP slice", "SE orig", "SE slice"],
        [[
            r["nf"], r["loc_orig"], r["loc_slice"], r["loc_path"],
            f"{r['slicing_time_s']}s", r["ep_orig"], r["ep_slice"],
            f"{r['se_orig_s']}s", f"{r['se_slice_s']}s",
        ] for r in rows.values()],
    )
    print_phase_profile({name: synthesize(name) for name in NFS})

    snort, balance = rows["snortlite"], rows["balance"]
    snort_reduction = snort["loc_orig"] / snort["loc_slice"]
    balance_reduction = balance["loc_orig"] / balance["loc_slice"]
    assert snort_reduction > balance_reduction  # snort benefits more
    assert snort["ep_orig"].startswith(">")     # path explosion in orig
    assert balance["ep_slice"] <= 20            # paper: 10
