"""E6 — paper §5 "Accuracy": 1000 random packets × both study NFs,
plus path-set equivalence between original and sliced programs.

Paper: "We repeat the experiments for 1000 times for the 2 NFs
respectively, and the outputs in each experiment are the same."  Here
the experiment also runs on the rest of the corpus — four more NFs the
paper left to future work ("We will test it on more open source NFs").
"""

from __future__ import annotations

import pytest

from common import print_table, synthesize
from repro.equiv.differential import differential_test
from repro.equiv.paths import compare_path_sets
from repro.nfactor.algorithm import NFactor
from repro.nfs import get_nf
from repro.symbolic.engine import EngineConfig

PAPER_NFS = ["snortlite", "balance"]
EXTRA_NFS = ["loadbalancer", "nat", "firewall", "monitor"]


def run_differential(name: str, n_packets: int = 1000):
    result = synthesize(name)
    spec = get_nf(name)
    return differential_test(
        result, n_packets=n_packets, seed=7, interesting=spec.interesting
    )


@pytest.mark.parametrize("name", PAPER_NFS + EXTRA_NFS)
def test_accuracy_1000_random_packets(benchmark, name):
    report = benchmark.pedantic(run_differential, args=(name,), rounds=1, iterations=1)
    print_table(
        f"§5 Accuracy (reproduced) — {name}",
        ["NF", "packets", "ref forwarded", "model forwarded", "verdict"],
        [[
            name, report.n_packets, report.n_forwarded_ref,
            report.n_forwarded_model,
            "IDENTICAL" if report.identical else f"{len(report.mismatches)} mismatches",
        ]],
    )
    benchmark.extra_info["packets"] = report.n_packets
    benchmark.extra_info["identical"] = report.identical
    assert report.identical, report.summary()


@pytest.mark.parametrize("name", ["balance", "loadbalancer", "nat", "monitor"])
def test_accuracy_path_sets_equal(benchmark, name):
    """Paper: "we use symbolic execution to exercise all possible
    execution paths on both sides ... the two sets of paths are the
    same"."""
    def compare():
        result = synthesize(name)
        nf = NFactor(get_nf(name).source, name=name)
        original, _ = nf.explore_original(EngineConfig(max_paths=16384))
        return compare_path_sets(original, result.paths)

    report = benchmark.pedantic(compare, rounds=1, iterations=1)
    print_table(
        f"§5 path-set comparison — {name}",
        ["NF", "orig paths", "merged", "sliced", "verdict"],
        [[name, report.n_original, report.n_merged, report.n_sliced,
          "EQUAL" if report.equivalent else "DIFFERENT"]],
    )
    benchmark.extra_info["equivalent"] = report.equivalent
    assert report.equivalent, report.summary()
