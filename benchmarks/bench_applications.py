"""E9 — paper §4: the three applications of synthesized models.

1. **Verification** — model checking on the model vs. symbolic
   execution of the original program ("can significantly reduce the
   overhead"), plus a stateful invariant check.
2. **Service policy composition** — the paper's example:
   {FW, IDS} + {LB} must compose to {FW, IDS, LB}.
3. **Testing** — BUZZ-style test-packet generation from the model FSM,
   validated against the original NF.
"""

from __future__ import annotations

import pytest

from common import print_table, synthesize
from repro.apps.compose import compose_chains
from repro.apps.testing import generate_tests, validate_suite
from repro.apps.verify import model_check_entries
from repro.nfactor.algorithm import NFactor
from repro.nfs import get_nf
from repro.symbolic.engine import EngineConfig
from repro.util.timer import Stopwatch


def test_verification_speedup(benchmark):
    """Checking properties on the model beats re-exploring the program."""
    def measure():
        result = synthesize("loadbalancer")
        with Stopwatch() as model_sw:
            n_sat = model_check_entries(result.model)
        nf = NFactor(get_nf("loadbalancer").source, name="lb")
        with Stopwatch() as program_sw:
            nf.explore_original(EngineConfig(max_paths=16384))
        return n_sat, model_sw.elapsed, program_sw.elapsed

    n_sat, model_s, program_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "§4 Verification — model checking vs. program symbolic execution (LB)",
        ["approach", "time (s)", "notes"],
        [
            ["symbolic exec of NF program", f"{program_s:.4f}", "all paths, unsliced"],
            ["solver over model entries", f"{model_s:.4f}", f"{n_sat} satisfiable entries"],
        ],
    )
    benchmark.extra_info["speedup"] = round(program_s / max(model_s, 1e-9), 1)
    assert model_s < program_s


def test_composition_example(benchmark):
    """{FW, IDS} + {LB} → {FW, IDS, LB} (the §4 running example)."""
    def compose():
        fw = synthesize("firewall").model
        ids = synthesize("snortlite").model
        lb = synthesize("loadbalancer").model
        return compose_chains([("FW", fw), ("IDS", ids)], [("LB", lb)])

    ranked = benchmark.pedantic(compose, rounds=1, iterations=1)
    print_table(
        "§4 Composition — candidate orders for {FW, IDS} + {LB}",
        ["order", "rewrite/match conflicts"],
        [[" -> ".join(a.order), a.n_conflicts] for a in ranked],
    )
    best = ranked[0]
    benchmark.extra_info["best_order"] = " -> ".join(best.order)
    assert best.order == ("FW", "IDS", "LB")
    assert best.n_conflicts == 0
    # The alternative the paper contrasts with ({FW, LB, IDS}) conflicts.
    alt = next(a for a in ranked if a.order == ("FW", "LB", "IDS"))
    assert alt.n_conflicts > 0


@pytest.mark.parametrize("name", ["loadbalancer", "firewall", "nat"])
def test_testgen_coverage_and_validation(benchmark, name):
    """Model-guided test packets drive the real NF as predicted."""
    def generate(nf_name=name):
        result = synthesize(nf_name)
        suite = generate_tests(result)
        report = validate_suite(suite, result)
        return result, suite, report

    result, suite, report = benchmark.pedantic(generate, rounds=1, iterations=1)
    covered = result.model.n_entries - len(suite.uncovered_entries)
    print_table(
        f"§4 Testing — model-guided test generation, {name}",
        ["NF", "entries", "covered", "test cases", "packets", "validated"],
        [[name, result.model.n_entries, covered, len(suite.cases),
          suite.n_packets, report.summary()]],
    )
    benchmark.extra_info["covered_entries"] = covered
    assert report.all_passed, report.failures
    assert covered >= result.model.n_entries // 2
