"""E10 — cluster scaling: warm QPS, stickiness and failover under shards.

Measures the PR-8 sharded cluster end-to-end over real sockets — an
in-process :class:`~repro.serve.cluster.ClusterHandle` (N shard servers
plus the consistent-hash router), against private per-shard cache
directories:

- **warm QPS** — single-node warm throughput vs. the same corpus
  through a sharded cluster.  On a box with ``cpu_count >= 4`` the
  4-shard cluster must clear ``2.5x`` the single-node number; on
  smaller boxes (the 1-CPU CI container) the ratio is recorded but not
  gated — shards add nothing when they time-slice one core;
- **stickiness** — every NF's warm requests must land on exactly one
  shard (the ring, not a load balancer, places keys), and the cluster
  warm cache-hit rate must be at least the single-node one: routing
  that sprayed keys across shards would show up here as cold misses;
- **envelopes** — the ``model`` payload served through the cluster
  must be byte-identical to the single-node one for every NF;
- **failover** — killing one shard mid-load must lose nothing: every
  request of the segment still answers 200 (spilled to the next ring
  node) and the router's ``serve.cluster.failover`` counter moves.

Runs two ways:

- as a pytest benchmark: ``pytest benchmarks/bench_serve_cluster.py``;
- as a script: ``python benchmarks/bench_serve_cluster.py [--quick]``
  (the CI ``perf-smoke`` job runs ``--quick``).  Both write
  ``BENCH_serve_cluster.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from common import print_table, write_bench_json
from repro.serve import ClusterHandle, ServeClient, ServeConfig, ServerHandle

CORPUS_QUICK = ["nat", "firewall", "monitor"]
CORPUS_FULL = ["nat", "firewall", "monitor", "l2switch", "ratelimiter", "balance"]

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_serve_cluster.json"


class _Sample:
    __slots__ = ("name", "status", "cached", "shard", "model_sig")

    def __init__(self, name: str, status: int, cached: bool,
                 shard: Optional[str], model_sig: str) -> None:
        self.name = name
        self.status = status
        self.cached = cached
        self.shard = shard
        self.model_sig = model_sig


def _model_sig(response) -> str:
    return json.dumps(response.payload["result"]["model"], sort_keys=True)


def _fire(port: int, work: List[str], threads: int) -> Tuple[float, List[_Sample]]:
    """Fire ``work`` synthesize requests from ``threads`` clients; wall-time it."""
    samples: List[_Sample] = []
    lock = threading.Lock()
    cursor = iter(work)

    def pump() -> None:
        client = ServeClient("127.0.0.1", port, timeout=300)
        try:
            while True:
                with lock:
                    name = next(cursor, None)
                if name is None:
                    return
                response = client.synthesize(name)
                response.raise_for_status()
                sample = _Sample(
                    name,
                    response.status,
                    bool(response.payload["result"].get("cached")),
                    response.shard,
                    _model_sig(response),
                )
                with lock:
                    samples.append(sample)
        finally:
            client.close()

    pool = [threading.Thread(target=pump) for _ in range(threads)]
    t0 = time.perf_counter()
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    return time.perf_counter() - t0, samples


def _warm_plan(names: List[str], rounds: int) -> List[str]:
    return [name for _ in range(rounds) for name in names]


def measure_single(names: List[str], rounds: int, threads: int,
                   cache_dir: str) -> Dict[str, object]:
    """Single-node warm QPS + per-NF model signatures (the baseline)."""
    handle = ServerHandle(ServeConfig(port=0, workers=1, cache_dir=cache_dir))
    handle.start()
    try:
        _fire(handle.port, list(names), 1)          # cold: fill the cache
        _fire(handle.port, list(names), 1)          # touch: memory tier hot
        elapsed, samples = _fire(handle.port, _warm_plan(names, rounds), threads)
    finally:
        handle.stop()
    sigs = {}
    for sample in samples:
        sigs[sample.name] = sample.model_sig
    hits = sum(1 for s in samples if s.cached)
    return {
        "single_qps": round(len(samples) / elapsed, 1) if elapsed else 0.0,
        "single_warm_hit_rate": round(hits / len(samples), 3) if samples else 0.0,
        "single_sigs": sigs,
    }


def measure_cluster(names: List[str], rounds: int, shards: int,
                    threads: int) -> Dict[str, object]:
    """Cluster warm QPS, stickiness, hit rate and envelope signatures."""
    with ClusterHandle(shards=shards, workers_per_shard=1) as cluster:
        port = cluster.router_port
        _fire(port, list(names), 1)                 # cold: fill shard caches
        _fire(port, list(names), 1)                 # touch: memory tiers hot
        elapsed, samples = _fire(port, _warm_plan(names, rounds), threads)
    shards_hit: Dict[str, set] = {}
    sigs: Dict[str, str] = {}
    for sample in samples:
        shards_hit.setdefault(sample.name, set()).add(sample.shard)
        sigs[sample.name] = sample.model_sig
    sticky = sum(1 for owners in shards_hit.values() if len(owners) == 1)
    hits = sum(1 for s in samples if s.cached)
    return {
        "shards": shards,
        "cluster_qps": round(len(samples) / elapsed, 1) if elapsed else 0.0,
        "cluster_warm_hit_rate": round(hits / len(samples), 3) if samples else 0.0,
        "sticky_nfs": sticky,
        "total_nfs": len(names),
        "shards_used": len({s.shard for s in samples}),
        "cluster_sigs": sigs,
    }


def measure_failover(names: List[str], shards: int) -> Dict[str, object]:
    """Kill a shard mid-segment; every request must still answer 200.

    Health probes are off so the dead shard is discovered on the
    request path itself — that is what makes ``serve.cluster.failover``
    move deterministically.
    """
    with ClusterHandle(shards=shards, workers_per_shard=1,
                       health_interval_s=0) as cluster:
        port = cluster.router_port
        _fire(port, list(names), 1)                 # warm every shard
        client = ServeClient("127.0.0.1", port, timeout=300)
        segment = _warm_plan(names, 4)
        kill_at = len(segment) // 3
        ok = lost = 0
        try:
            # Kill the shard that actually owns the first NF's key —
            # with few shards the ring may leave shard 0 ownerless, and
            # killing a shard nobody routes to exercises nothing.
            probe = client.synthesize(names[0])
            probe.raise_for_status()
            victim = next(
                i for i, h in enumerate(cluster.shard_handles)
                if f"{cluster.host}:{h.port}" == probe.shard
            )
            for i, name in enumerate(segment):
                if i == kill_at:
                    cluster.kill_shard(victim)
                try:
                    response = client.synthesize(name)
                    ok += 1 if response.status == 200 else 0
                    lost += 0 if response.status == 200 else 1
                except Exception:
                    lost += 1
        finally:
            client.close()
        assert cluster.router_handle is not None
        counters = cluster.router_handle.registry.snapshot()["counters"]
    return {
        "failover_requests": len(segment),
        "failover_ok": ok,
        "failover_lost": lost,
        "failover_count": int(counters.get("serve.cluster.failover", 0)),
    }


def measure(names: List[str], rounds: int, shards: int,
            threads: int) -> Dict[str, object]:
    import tempfile

    row: Dict[str, object] = {
        "nfs": list(names),
        "cpu_count": os.cpu_count() or 1,
        "warm_rounds": rounds,
        "threads": threads,
    }
    with tempfile.TemporaryDirectory(prefix="repro-bench-cluster-") as tmp:
        row.update(measure_single(names, rounds, threads, tmp))
    row.update(measure_cluster(names, rounds, shards, threads))
    row.update(measure_failover(names, shards=min(shards, 2)))
    single_sigs = row.pop("single_sigs")
    cluster_sigs = row.pop("cluster_sigs")
    row["envelope_mismatches"] = sum(
        1 for name in names if single_sigs.get(name) != cluster_sigs.get(name)
    )
    single_qps = row["single_qps"]
    row["speedup"] = (
        round(row["cluster_qps"] / single_qps, 2) if single_qps else 0.0
    )
    return row


def check(row: Dict[str, object]) -> List[str]:
    """The acceptance assertions; returns human-readable failures."""
    failures = []
    if row["cpu_count"] >= 4 and row["shards"] >= 4:
        if row["speedup"] < 2.5:
            failures.append(
                f"{row['shards']}-shard warm QPS {row['cluster_qps']} is only "
                f"{row['speedup']}x single-node {row['single_qps']} "
                f"(need 2.5x on {row['cpu_count']} CPUs)"
            )
    if row["sticky_nfs"] != row["total_nfs"]:
        failures.append(
            f"only {row['sticky_nfs']}/{row['total_nfs']} NFs stayed on one "
            "shard (routing is not sticky)"
        )
    if row["cluster_warm_hit_rate"] < row["single_warm_hit_rate"]:
        failures.append(
            f"cluster warm hit rate {row['cluster_warm_hit_rate']} below "
            f"single-node {row['single_warm_hit_rate']}"
        )
    if row["envelope_mismatches"]:
        failures.append(
            f"{row['envelope_mismatches']} NFs served different models "
            "through the cluster than single-node"
        )
    if row["failover_lost"]:
        failures.append(
            f"{row['failover_lost']} requests lost while killing a shard"
        )
    if row["failover_count"] == 0:
        failures.append("shard kill produced no serve.cluster.failover")
    return failures


def report(row: Dict[str, object]) -> None:
    print_table(
        f"Cluster warm QPS ({row['shards']} shards vs single node, "
        f"{row['cpu_count']} CPUs)",
        ["NFs", "single QPS", "cluster QPS", "speedup", "hit rate (1 / N)",
         "sticky"],
        [[
            len(row["nfs"]), row["single_qps"], row["cluster_qps"],
            f"{row['speedup']}x",
            f"{row['single_warm_hit_rate']} / {row['cluster_warm_hit_rate']}",
            f"{row['sticky_nfs']}/{row['total_nfs']}",
        ]],
    )
    print_table(
        "Failover segment (one shard killed mid-load)",
        ["requests", "ok", "lost", "failovers", "envelope mismatches"],
        [[
            row["failover_requests"], row["failover_ok"],
            row["failover_lost"], row["failover_count"],
            row["envelope_mismatches"],
        ]],
    )


# -- pytest benchmark entry ---------------------------------------------------


def test_perf_serve_cluster(benchmark):
    row = benchmark.pedantic(
        measure, args=(CORPUS_QUICK, 6, 2, 4), rounds=1, iterations=1
    )
    for key, value in row.items():
        benchmark.extra_info[key] = value
    report(row)
    failures = check(row)
    assert not failures, "; ".join(failures)


# -- script entry (CI perf-smoke) ---------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="3 NFs, 2 shards, fewer warm rounds (the CI perf-smoke mode)",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    names = CORPUS_QUICK if args.quick else CORPUS_FULL
    row = measure(
        names,
        rounds=6 if args.quick else 12,
        shards=2 if args.quick else 4,
        threads=4 if args.quick else 8,
    )
    row["mode"] = "quick" if args.quick else "full"
    report(row)
    failures = check(row)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    write_bench_json(args.out, "serve_cluster", row)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
