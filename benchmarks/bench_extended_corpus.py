"""Beyond the paper — the full corpus sweep.

The paper evaluates two NFs and lists "test it on more open source
NFs" as future work.  This bench runs the whole pipeline on all nine
corpus NFs and reports Table-2-style figures plus the accuracy verdict
for each — the comprehensive version of the paper's evaluation.
"""

from __future__ import annotations

import pytest

from common import print_table, synthesize
from repro.equiv.differential import differential_test
from repro.nfs import get_nf, nf_names

#: snortlite is covered by bench_table2; keep this sweep quick.
SWEEP = [n for n in nf_names() if n != "snortlite"]


def sweep_row(name: str) -> dict:
    result = synthesize(name)
    spec = get_nf(name)
    report = differential_test(
        result, n_packets=500, seed=7, interesting=spec.interesting
    )
    stats = result.stats
    return {
        "nf": name,
        "loc": stats.source_loc,
        "slice": stats.slice_loc,
        "paths": stats.n_paths,
        "entries": stats.n_entries,
        "tables": len(result.model.tables),
        "state": ", ".join(sorted(result.model.state_atoms())) or "-",
        "identical": report.identical,
    }


def test_full_corpus_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: [sweep_row(name) for name in SWEEP], rounds=1, iterations=1
    )
    print_table(
        "Full-corpus synthesis sweep (beyond the paper's two NFs)",
        ["NF", "LoC", "slice", "paths", "entries", "config tables",
         "state tables", "500-pkt accuracy"],
        [[
            r["nf"], r["loc"], r["slice"], r["paths"], r["entries"],
            r["tables"], r["state"],
            "IDENTICAL" if r["identical"] else "MISMATCH",
        ] for r in rows],
    )
    benchmark.extra_info["n_nfs"] = len(rows)
    for r in rows:
        assert r["identical"], r["nf"]
        assert r["slice"] <= r["loc"]
        assert r["paths"] == r["entries"]


@pytest.mark.parametrize("name", ["l2switch", "ratelimiter", "proxycache"])
def test_extended_nfs_individually(benchmark, name):
    row = benchmark.pedantic(sweep_row, args=(name,), rounds=1, iterations=1)
    assert row["identical"]
    benchmark.extra_info.update(row)
