"""E8 — artifact-cache performance: cold vs. warm re-synthesis.

Measures the PR-3 persistent artifact cache (:mod:`repro.cache`)
end-to-end on the corpus, three ways, against a private temporary cache
directory:

- **no-cache** — artifact cache disabled (the ``--no-cache`` CLI
  semantics): every phase of every NF is recomputed;
- **cold**     — cache enabled over an empty directory: every artifact
  misses and is written;
- **warm**     — same directory, but with the in-memory tier and the
  process-global solver cache dropped first, simulating a *fresh
  process* over a warm disk: every NF should come back as a single
  model-tier disk hit.

Caching must never change results, so the three runs' serialized models
are asserted byte-identical before any timing is reported.

Runs two ways:

- as a pytest benchmark: ``pytest benchmarks/bench_perf_cache.py``
  (asserts the acceptance thresholds: warm re-synthesis ≥ 5× faster
  than no-cache, all warm models served from the model tier);
- as a script: ``python benchmarks/bench_perf_cache.py [--quick]``
  (``--quick`` uses a 3-NF subset and only asserts identity plus
  warm model-tier hits — the CI ``perf-smoke`` job).  Both script
  modes write ``BENCH_perf_cache.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Tuple

from common import print_table, write_bench_json
from repro import cache as artifact_cache
from repro.nfactor.algorithm import NFactorConfig, synthesize_model_cached
from repro.nfs import get_nf, nf_names
from repro.symbolic.engine import EngineConfig
from repro.symbolic.solver import clear_global_cache

CORPUS_QUICK = ["nat", "firewall", "loadbalancer"]

#: Default output path, anchored at the repo root (not the CWD).
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_perf_cache.json"


def run_corpus(names: List[str], enabled: bool) -> Tuple[Dict[str, str], int, float]:
    """Synthesize ``names`` via the model tier; (models, model_hits, s)."""
    models: Dict[str, str] = {}
    model_hits = 0
    t0 = time.perf_counter()
    for name in names:
        spec = get_nf(name)
        config = NFactorConfig(
            engine=EngineConfig(max_paths=16384), artifact_cache=enabled
        )
        cached = synthesize_model_cached(
            spec.source, name=name, entry=spec.entry, config=config
        )
        models[name] = cached.model_json
        model_hits += int(cached.cached)
    return models, model_hits, time.perf_counter() - t0


def measure(names: List[str]) -> Dict[str, object]:
    """The no-cache/cold/warm comparison over a private temp cache dir."""
    tmp = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        clear_global_cache()
        with artifact_cache.override(enabled=False):
            nocache_models, _, t_nocache = run_corpus(names, enabled=False)

        with artifact_cache.override(directory=tmp, enabled=True):
            clear_global_cache()
            cold_models, cold_hits, t_cold = run_corpus(names, enabled=True)

            # Fresh-process simulation: drop everything held in memory;
            # only the disk tier (and the solver blob) survives.
            clear_global_cache()
            artifact_cache.get_store().drop_memory()
            warm_models, warm_hits, t_warm = run_corpus(names, enabled=True)
    finally:
        clear_global_cache()
        shutil.rmtree(tmp, ignore_errors=True)

    identical = nocache_models == cold_models == warm_models
    return {
        "nfs": names,
        "identical_models": identical,
        "nocache_s": round(t_nocache, 4),
        "cold_s": round(t_cold, 4),
        "warm_s": round(t_warm, 4),
        "speedup_warm": round(t_nocache / t_warm, 2) if t_warm else 0.0,
        "cold_model_hits": cold_hits,
        "warm_model_hits": warm_hits,
        "n_nfs": len(names),
    }


def report(row: Dict[str, object]) -> None:
    print_table(
        "Artifact cache (no-cache / cold / warm)",
        ["NFs", "no-cache", "cold", "warm", "speedup warm",
         "warm model hits", "identical"],
        [[
            row["n_nfs"], f"{row['nocache_s']}s", f"{row['cold_s']}s",
            f"{row['warm_s']}s", f"{row['speedup_warm']}x",
            f"{row['warm_model_hits']}/{row['n_nfs']}",
            row["identical_models"],
        ]],
    )


# -- pytest benchmark entry ---------------------------------------------------


def test_perf_cache(benchmark):
    row = benchmark.pedantic(measure, args=(list(nf_names()),), rounds=1, iterations=1)
    for key, value in row.items():
        benchmark.extra_info[key] = value
    report(row)

    assert row["identical_models"], "the artifact cache changed a synthesized model"
    assert row["warm_model_hits"] == row["n_nfs"], "a warm NF missed the model tier"
    assert row["speedup_warm"] >= 5.0, (
        f"warm speedup {row['speedup_warm']}x < 5x"
    )


# -- script entry (CI perf-smoke) ---------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="3-NF subset; only assert identity + warm model hits (CI smoke)",
    )
    parser.add_argument(
        "--out",
        "--json",
        dest="out",
        default=DEFAULT_OUT,
        type=Path,
        help=f"result JSON path (default: {DEFAULT_OUT.name} at the repo root)",
    )
    args = parser.parse_args(argv)

    names = CORPUS_QUICK if args.quick else list(nf_names())
    row = measure(names)
    row["mode"] = "quick" if args.quick else "full"
    report(row)

    write_bench_json(args.out, "perf_cache", row)

    failures = []
    if not row["identical_models"]:
        failures.append("the artifact cache changed a synthesized model")
    if row["warm_model_hits"] != row["n_nfs"]:
        failures.append(
            f"warm model-tier hits {row['warm_model_hits']}/{row['n_nfs']}"
        )
    if not args.quick and row["speedup_warm"] < 5.0:
        failures.append(f"warm speedup {row['speedup_warm']}x < 5x")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
