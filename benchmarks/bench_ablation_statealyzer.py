"""Ablation — StateAlyzer on the packet slice vs. the whole program.

Paper §3.1: "Different from StateAlyzer, NFactor inputs the packet
processing slice instead of the whole program so it reduces the amount
of code to process."  Feeding the *whole* program to the
output-impacting test marks every updated persistent variable as
output-impacting (each statement trivially appears in the 'slice'),
collapsing the oisVar/logVar distinction.  This bench measures both the
work reduction and the classification difference.
"""

from __future__ import annotations

from common import print_table, synthesize
from repro.lang.ir import iter_block
from repro.statealyzer.classify import classify_variables


def classify_both():
    result = synthesize("snortlite")
    flat = result.flat
    all_sids = {s.sid for s in iter_block(flat.block)}
    precise = result.categories
    coarse = classify_variables(flat, all_sids)  # whole program as "slice"
    return result, precise, coarse, all_sids


def test_statealyzer_slice_input_ablation(benchmark):
    result, precise, coarse, all_sids = benchmark.pedantic(
        classify_both, rounds=1, iterations=1
    )
    print_table(
        "Ablation — StateAlyzer input: packet slice vs. whole program (snortlite)",
        ["input", "statements", "oisVars", "logVars"],
        [
            ["packet slice (NFactor)", len(result.pkt_slice),
             len(precise.ois_vars), len(precise.log_vars)],
            ["whole program (StateAlyzer)", len(all_sids),
             len(coarse.ois_vars), len(coarse.log_vars)],
        ],
    )
    # Work reduction: the slice is a fraction of the program.
    assert len(result.pkt_slice) < len(all_sids) / 2
    # Classification sharpening: with the whole program every updated
    # persistent variable becomes "output-impacting", so the logVar
    # category collapses into oisVar.
    assert precise.ois_vars <= coarse.ois_vars
    assert len(coarse.log_vars) < len(precise.log_vars)
    misclassified = coarse.ois_vars - precise.ois_vars
    assert "total_pkts" in misclassified or "alert_count" in misclassified
    benchmark.extra_info["misclassified_as_ois"] = sorted(misclassified)
