"""E8 — paper Figure 4: the four typical NF code structures.

The paper claims structures (a) one-loop, (b) callback and
(c) consumer–producer are directly analyzable, and (d) nested
socket loops become analyzable after TCP unfolding (Fig. 5).  This
bench writes the *same* forwarding logic (forward iff dport == 80) in
all three loop shapes, synthesizes a model from each, and checks the
models agree entry-for-entry; shape (d) is exercised via balance.
"""

from __future__ import annotations

import pytest

from common import print_table, synthesize
from repro.equiv.differential import differential_test
from repro.nfactor.algorithm import NFactor

LOGIC_CALLBACK = '''
hits = 0
def handler(pkt):
    global hits
    if pkt.dport == 80:
        hits += 1
        send_packet(pkt)

def Main():
    sniff("eth0", handler)
'''

LOGIC_MAIN_LOOP = '''
hits = 0
def Main():
    global hits
    while True:
        pkt = recv_packet()
        if pkt.dport == 80:
            hits += 1
            send_packet(pkt)
'''

LOGIC_CONSUMER_PRODUCER = '''
hits = 0
queue = []
def ReadLp():
    while True:
        p = recv_packet()
        queue.append(p)

def ProcLp():
    global hits
    while True:
        pkt = queue.pop(0)
        if pkt.dport == 80:
            hits += 1
            send_packet(pkt)
'''

SHAPES = {
    "callback (4b)": LOGIC_CALLBACK,
    "main-loop (4a)": LOGIC_MAIN_LOOP,
    "consumer-producer (4c)": LOGIC_CONSUMER_PRODUCER,
}


def synthesize_all():
    return {
        shape: NFactor(source, name=shape).synthesize()
        for shape, source in SHAPES.items()
    }


def test_figure4_structures(benchmark):
    results = benchmark.pedantic(synthesize_all, rounds=1, iterations=1)

    rows = []
    signatures = set()
    for shape, result in results.items():
        model = result.model
        sig = tuple(
            sorted(
                (str(sorted(map(str, e.match_flow))), e.drops)
                for e in model.all_entries()
            )
        )
        signatures.add(sig)
        rows.append([
            shape,
            result.normalize_report.shape,
            model.n_entries,
            len(model.forwarding_entries()),
        ])
        report = differential_test(result, n_packets=200, interesting={"dport": [80]})
        assert report.identical, f"{shape}: {report.summary()}"

    print_table(
        "Figure 4 (reproduced) — same logic, three loop structures",
        ["source shape", "detected as", "entries", "forwarding entries"],
        rows,
    )
    # All three structures yield the same forwarding model.
    assert len(signatures) == 1
    benchmark.extra_info["shapes_equivalent"] = True


def test_figure4d_nested_loop_via_unfolding(benchmark):
    """Shape (d): the socket-level balance is analyzable after
    Fig. 5's nested-loop → single-loop transformation."""
    result = benchmark.pedantic(lambda: synthesize("balance"), rounds=1, iterations=1)
    assert result.unfolded
    assert result.model.n_entries > 0
    print_table(
        "Figure 4d — nested loop handled by TCP unfolding",
        ["NF", "unfolded", "entries", "state tables"],
        [["balance", result.unfolded, result.model.n_entries,
          ", ".join(sorted(result.model.state_atoms()))]],
    )
