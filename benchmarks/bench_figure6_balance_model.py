"""E4 — paper Figure 6: NFactor output for *balance*.

Regenerates the figure:

    | Match          | Action                             |
    | Flow | State   | Flow                       | State |
    mode = RR
    | f    | idx     | send(f, server[idx])       | (idx+1)%N |
    mode = HASH
    | f    | *       | send(f, server[hash(f)%N]) | *         |

and asserts the two structural claims: the round-robin table matches on
the index state and advances it circularly; the hash table picks the
backend from the flow hash and carries no index state.
"""

from __future__ import annotations

from common import print_table, synthesize
from repro.lang.pretty import pretty_stmt
from repro.model.serialize import render_model, sym_text


def test_figure6(benchmark):
    result = benchmark.pedantic(lambda: synthesize("balance"), rounds=1, iterations=1)
    model = result.model

    print("\n=== Figure 6 (reproduced): NFactor output for balance ===")
    print(render_model(model))
    benchmark.extra_info["n_entries"] = model.n_entries
    benchmark.extra_info["n_config_tables"] = len(model.tables)

    # Locate the per-mode new-connection entries.
    def state_texts(entry):
        return [pretty_stmt(s) for s in entry.state_action_stmts]

    rr_entries = [
        e for e in model.all_entries()
        if any("servers[rr_idx]" in t for t in state_texts(e))
    ]
    hash_entries = [
        e for e in model.all_entries()
        if any("hash(" in t for t in state_texts(e))
    ]
    assert rr_entries, "round-robin table missing"
    assert hash_entries, "hash table missing"

    # RR row: state transition (idx+1) % N present.
    assert any(
        "(rr_idx + 1) % len(servers)" in t.replace("(((", "(").replace("  ", " ")
        or "% len(servers)" in t
        for e in rr_entries
        for t in state_texts(e)
    )
    # HASH row: no index state transition.
    for entry in hash_entries:
        assert not any("rr_idx =" in t for t in state_texts(entry))

    # Config split: RR and HASH live in different config tables.
    rr_key = rr_entries[0].config_key()
    hash_key = hash_entries[0].config_key()
    assert rr_key != hash_key

    # The backend selection state is an oisVar (paper: "the round-robin
    # index is figured out as output-impacting state").
    assert "rr_idx" in model.ois_vars
