"""E7 — paper Figures 3 & 5: TCP unfolding of the socket-level balance.

Regenerates the transformation artifact: the Fig.-3-style source goes
in, the Fig.-5-style single packet loop comes out, with the hidden TCP
connection state materialised as explicit tables.  Asserts the §3.2
behavioural claim: "data packets without 3-way handshake established
would be dropped" — visible in the *model*, not just the code.
"""

from __future__ import annotations

from common import print_table, synthesize
from repro.interp import Interpreter
from repro.lang.parser import parse_program
from repro.net.packet import Packet, TCP_ACK, TCP_SYN
from repro.nfactor.tcp_unfold import unfold_tcp
from repro.nfs import get_nf


def unfold():
    spec = get_nf("balance")
    original = parse_program(spec.source, name="balance")
    unfolded = unfold_tcp(original)
    return spec, original, unfolded


def test_figure5_unfolding(benchmark):
    spec, original, unfolded = benchmark.pedantic(unfold, rounds=1, iterations=1)

    print("\n=== Figure 5 (reproduced): unfolded single-loop program ===")
    print(unfolded.source)

    print_table(
        "Figure 3 → Figure 5 transformation",
        ["program", "functions", "IR statements", "socket calls"],
        [
            ["balance (Fig. 3 shape)", len(original.functions), original.loc(), "yes"],
            ["unfolded (Fig. 5 shape)", len(unfolded.functions), unfolded.loc(), "no"],
        ],
    )
    benchmark.extra_info["unfolded_loc"] = unfolded.loc()

    # Hidden-state behaviour: data without handshake drops.
    interp = Interpreter(program=unfolded)
    interp.run_module()
    flow = dict(ip_src=1, sport=5000, ip_dst=9, dport=8080)
    assert interp.process_packet(Packet(tcp_flags=TCP_ACK, **flow)) == []
    interp.process_packet(Packet(tcp_flags=TCP_SYN, **flow))
    interp.process_packet(Packet(tcp_flags=TCP_ACK, **flow))
    assert len(interp.process_packet(Packet(tcp_flags=TCP_ACK, **flow))) == 1


def test_figure5_model_shows_tcp_state(benchmark):
    result = benchmark.pedantic(lambda: synthesize("balance"), rounds=1, iterations=1)
    atoms = result.model.state_atoms()
    assert "__tcp_conns" in atoms  # the hidden state, now in the model
    drop_entries = result.model.drop_entries()
    # There is an explicit "no handshake yet" drop entry.
    assert any(
        any("__tcp_conns" in str(c) for c in e.match_state) for e in drop_entries
    )
    print_table(
        "TCP state in the synthesized model",
        ["state tables", "entries matching on TCP state"],
        [[", ".join(sorted(atoms)),
          sum(1 for e in result.model.all_entries() if e.match_state)]],
    )
