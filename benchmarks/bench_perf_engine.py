"""E8 — engine cold-path performance: subsumption, interning, frontier.

Measures the engine's cold-path stack end-to-end on the corpus with
every cache pinned off (persistent artifact store disabled, solver
constraint cache off): what's left is the raw exploration cost the
PR-4 layers attack.

- **baseline**  — all three layers off: every duplicate state is
  re-explored and every branch arm is a fresh solver check;
- **optimized** — interning + witness shortcut + subsumption on
  (the default configuration);
- **frontier**  — optimized, plus ``strategy="frontier"`` with
  ``parallel_paths=4``: the initial branch frontier is partitioned
  across worker processes.

All three produce byte-identical serialized models — that is asserted
before any number is reported.  The wall-clock comparison for the
frontier row is only meaningful with spare cores (``cpu_count`` is
recorded in the artifact for exactly that reason); the check/state
reductions are machine-independent.

Runs two ways:

- as a pytest benchmark: ``pytest benchmarks/bench_perf_engine.py``
  (asserts the acceptance thresholds: >=20% fewer solver checks or
  explored states on >=3 NFs, identical models);
- as a script: ``python benchmarks/bench_perf_engine.py [--quick]``
  (``--quick`` uses a 3-NF subset and only asserts model identity plus
  a non-zero reduction somewhere — the CI ``perf-smoke`` job).  Both
  script modes write ``BENCH_perf_engine.json``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Dict, List

from common import print_table, write_bench_json
from repro.model.serialize import model_to_json
from repro.nfactor.algorithm import NFactor, NFactorConfig
from repro.nfs import get_nf, nf_names
from repro.symbolic.engine import EngineConfig

CORPUS_QUICK = ["nat", "firewall", "snortlite"]

#: Default output path, anchored at the repo root (not the CWD).
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_perf_engine.json"

#: The largest corpus NF — the frontier wall-clock comparison target.
LARGEST = "snortlite"

BASELINE = dict(intern_exprs=False, witness_shortcut=False, subsumption=False)
FRONTIER = dict(strategy="frontier", parallel_paths=4)


def run_one(name: str, **engine_kwargs) -> Dict[str, object]:
    """One cold synthesis; returns the model bytes and engine counters."""
    spec = get_nf(name)
    config = NFactorConfig(
        engine=EngineConfig(solver_cache=False, **engine_kwargs),
        artifact_cache=False,
    )
    t0 = time.perf_counter()
    result = NFactor(spec.source, name=name, config=config).synthesize()
    wall_s = time.perf_counter() - t0
    stats = result.stats
    return {
        "model": model_to_json(result.model),
        "wall_s": round(wall_s, 4),
        "solver_checks": stats.solver_checks,
        "states_explored": stats.states_explored,
        "pruned_subsumed": stats.pruned_subsumed,
        "witness_hits": stats.witness_hits,
        "intern_hits": stats.intern_hits,
        "intern_misses": stats.intern_misses,
    }


def measure(names: List[str]) -> Dict[str, object]:
    """Baseline/optimized per NF, plus the frontier run on the largest."""
    from repro import cache as artifact_cache

    with artifact_cache.override(enabled=False):
        return _measure(names)


def _measure(names: List[str]) -> Dict[str, object]:
    per_nf: List[Dict[str, object]] = []
    identical = True
    reduced = 0
    for name in names:
        base = run_one(name, **BASELINE)
        opt = run_one(name)
        identical = identical and base["model"] == opt["model"]
        check_cut = _reduction(base["solver_checks"], opt["solver_checks"])
        state_cut = _reduction(base["states_explored"], opt["states_explored"])
        reduced += max(check_cut, state_cut) >= 0.20
        per_nf.append(
            {
                "nf": name,
                "baseline_wall_s": base["wall_s"],
                "optimized_wall_s": opt["wall_s"],
                "baseline_checks": base["solver_checks"],
                "optimized_checks": opt["solver_checks"],
                "check_reduction": round(check_cut, 4),
                "baseline_states": base["states_explored"],
                "optimized_states": opt["states_explored"],
                "state_reduction": round(state_cut, 4),
                "pruned_subsumed": opt["pruned_subsumed"],
                "witness_hits": opt["witness_hits"],
                "intern_hits": opt["intern_hits"],
                "intern_misses": opt["intern_misses"],
                "identical_model": base["model"] == opt["model"],
            }
        )

    row: Dict[str, object] = {
        "nfs": names,
        "cpu_count": os.cpu_count(),
        "identical_models": identical,
        "nfs_with_20pct_reduction": reduced,
        "per_nf": per_nf,
    }

    if LARGEST in names:
        sequential = run_one(LARGEST)
        frontier = run_one(LARGEST, **FRONTIER)
        row["frontier_nf"] = LARGEST
        row["frontier_jobs"] = FRONTIER["parallel_paths"]
        row["sequential_wall_s"] = sequential["wall_s"]
        row["frontier_wall_s"] = frontier["wall_s"]
        row["frontier_speedup"] = (
            round(sequential["wall_s"] / frontier["wall_s"], 2)
            if frontier["wall_s"]
            else 0.0
        )
        row["frontier_identical"] = frontier["model"] == sequential["model"]
        row["identical_models"] = identical and row["frontier_identical"]
    return row


def _reduction(before: int, after: int) -> float:
    return (before - after) / before if before else 0.0


def report(row: Dict[str, object]) -> None:
    print_table(
        "Engine cold path (baseline vs optimized, caches off)",
        ["NF", "base", "opt", "checks", "-> checks", "cut",
         "states", "-> states", "cut", "grafts", "identical"],
        [[
            r["nf"], f"{r['baseline_wall_s']}s", f"{r['optimized_wall_s']}s",
            r["baseline_checks"], r["optimized_checks"],
            f"{r['check_reduction']:.0%}",
            r["baseline_states"], r["optimized_states"],
            f"{r['state_reduction']:.0%}",
            r["pruned_subsumed"], r["identical_model"],
        ] for r in row["per_nf"]],
    )
    if "frontier_wall_s" in row:
        print_table(
            f"Frontier exploration ({row['frontier_nf']}, "
            f"N={row['frontier_jobs']}, {row['cpu_count']} cpu)",
            ["sequential", "frontier", "speedup", "identical"],
            [[
                f"{row['sequential_wall_s']}s", f"{row['frontier_wall_s']}s",
                f"{row['frontier_speedup']}x", row["frontier_identical"],
            ]],
        )


# -- pytest benchmark entry ---------------------------------------------------


def test_perf_engine(benchmark):
    row = benchmark.pedantic(
        measure, args=(list(nf_names()),), rounds=1, iterations=1
    )
    for key, value in row.items():
        if key != "per_nf":
            benchmark.extra_info[key] = value
    report(row)

    assert row["identical_models"], "a cold-path layer changed a model"
    assert row["nfs_with_20pct_reduction"] >= 3, (
        f"only {row['nfs_with_20pct_reduction']} NFs saw a >=20% "
        "check/state reduction (need 3)"
    )


# -- script entry (CI perf-smoke) ---------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="3-NF subset; only assert identity + some reduction (CI smoke)",
    )
    parser.add_argument(
        "--out",
        "--json",
        dest="out",
        default=DEFAULT_OUT,
        type=Path,
        help=f"result JSON path (default: {DEFAULT_OUT.name} at the repo root)",
    )
    args = parser.parse_args(argv)

    names = CORPUS_QUICK if args.quick else list(nf_names())
    row = measure(names)
    row["mode"] = "quick" if args.quick else "full"
    report(row)

    write_bench_json(args.out, "perf_engine", row)

    failures = []
    if not row["identical_models"]:
        failures.append("a cold-path layer changed a synthesized model")
    if args.quick:
        if row["nfs_with_20pct_reduction"] < 1:
            failures.append("no NF saw a >=20% check/state reduction")
    elif row["nfs_with_20pct_reduction"] < 3:
        failures.append(
            f"only {row['nfs_with_20pct_reduction']} NFs saw a >=20% "
            "check/state reduction (need 3)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
